"""Heartbeat files: atomic writes, liveness classification, cleanup."""

import json
import os
import time

from repro.obs import Heartbeat, liveness, read_heartbeats
from repro.obs.heartbeat import (DEFAULT_STALE_AFTER, heartbeat_dir,
                                 pid_alive)


def test_heartbeat_dir_joins_convention(tmp_path):
    assert heartbeat_dir(str(tmp_path)) == str(tmp_path / "heartbeats")


def test_beat_writes_self_describing_record(tmp_path):
    monitor = Heartbeat(str(tmp_path), role="coordinator", interval=9.0)
    monitor.beat()
    with open(monitor.path, encoding="utf-8") as stream:
        record = json.load(stream)
    assert record["pid"] == os.getpid()
    assert record["role"] == "coordinator"
    assert record["interval"] == 9.0
    assert record["points"] == 0
    assert record["current"] is None
    assert record["beat_ts"] >= record["started_ts"]
    monitor.stop()


def test_point_boundaries_advance_the_record(tmp_path):
    monitor = Heartbeat(str(tmp_path), interval=9.0)
    monitor.point_started("abc123def456", last_seq=4)
    record = read_heartbeats(str(tmp_path))[0]
    assert record["current"] == "abc123def456"
    assert record["last_seq"] == 4
    monitor.point_finished(last_seq=5)
    record = read_heartbeats(str(tmp_path))[0]
    assert record["current"] is None
    assert record["points"] == 1
    assert record["last_seq"] == 5
    monitor.stop()


def test_update_sets_bulk_progress(tmp_path):
    monitor = Heartbeat(str(tmp_path), role="coordinator", interval=9.0)
    monitor.update(points=17, last_seq=40)
    record = read_heartbeats(str(tmp_path))[0]
    assert record["points"] == 17
    assert record["last_seq"] == 40
    monitor.stop()


def test_clean_stop_removes_the_file(tmp_path):
    monitor = Heartbeat(str(tmp_path), interval=9.0).start()
    assert os.path.exists(monitor.path)
    monitor.stop()
    assert not os.path.exists(monitor.path)


def test_stop_without_remove_leaves_a_final_beat(tmp_path):
    monitor = Heartbeat(str(tmp_path), interval=9.0).start()
    monitor.points = 3
    monitor.stop(remove=False)
    record = read_heartbeats(str(tmp_path))[0]
    assert record["points"] == 3


def test_timer_thread_beats_on_its_own(tmp_path):
    monitor = Heartbeat(str(tmp_path), interval=0.02).start()
    try:
        deadline = time.time() + 5.0
        while time.time() < deadline:
            record = read_heartbeats(str(tmp_path))[0]
            if record["beats"] >= 3:
                break
            time.sleep(0.01)
        assert record["beats"] >= 3
    finally:
        monitor.stop()


def test_read_heartbeats_skips_torn_and_foreign_files(tmp_path):
    monitor = Heartbeat(str(tmp_path), interval=9.0)
    monitor.beat()
    (tmp_path / "hb-99999999.json").write_text('{"pid": 99999')  # torn
    (tmp_path / "notes.txt").write_text("unrelated")
    records = read_heartbeats(str(tmp_path))
    assert [record["pid"] for record in records] == [os.getpid()]
    monitor.stop()


def test_read_heartbeats_missing_directory_is_empty(tmp_path):
    assert read_heartbeats(str(tmp_path / "absent")) == []


def test_pid_alive_self_and_bogus():
    assert pid_alive(os.getpid())
    assert not pid_alive(-1)


def test_liveness_ok_stale_dead():
    now = time.time()
    fresh = {"pid": os.getpid(), "beat_ts": now, "interval": 0.5}
    assert liveness(fresh, now=now) == "ok"
    old = {"pid": os.getpid(), "beat_ts": now - DEFAULT_STALE_AFTER - 1,
           "interval": 0.5}
    assert liveness(old, now=now) == "stale"
    # A beat however fresh means nothing if the pid is gone.
    gone = {"pid": 2 ** 22 + 12345, "beat_ts": now, "interval": 0.5}
    assert liveness(gone, now=now) == "dead"


def test_liveness_threshold_is_pluggable():
    now = time.time()
    record = {"pid": os.getpid(), "beat_ts": now - 2.0, "interval": 0.5}
    assert liveness(record, now=now) == "ok"
    assert liveness(record, now=now, stale_after=1.0) == "stale"


def test_liveness_threshold_scales_with_slow_intervals():
    # A worker beating every 30s is not stale at 60s: the default
    # threshold is max(DEFAULT_STALE_AFTER, 4 * interval).
    now = time.time()
    record = {"pid": os.getpid(), "beat_ts": now - 60.0, "interval": 30.0}
    assert liveness(record, now=now) == "ok"
    record = {"pid": os.getpid(), "beat_ts": now - 130.0, "interval": 30.0}
    assert liveness(record, now=now) == "stale"
