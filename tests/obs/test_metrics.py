"""MetricsRegistry: counters, gauges, timers, cross-process merge."""

from repro.obs import MetricsRegistry


def test_counters_accumulate():
    metrics = MetricsRegistry()
    metrics.inc("cache.hit")
    metrics.inc("cache.hit")
    metrics.inc("cache.miss", 3)
    assert metrics.counters == {"cache.hit": 2, "cache.miss": 3}


def test_gauges_last_write_wins():
    metrics = MetricsRegistry()
    metrics.gauge("budget", 10)
    metrics.gauge("budget", 7)
    assert metrics.gauges == {"budget": 7}


def test_timers_track_count_total_min_max():
    metrics = MetricsRegistry()
    for seconds in (0.2, 0.1, 0.4):
        metrics.observe("span.point", seconds)
    timer = metrics.timers["span.point"]
    assert timer["count"] == 3
    assert abs(timer["total_s"] - 0.7) < 1e-9
    assert timer["min_s"] == 0.1
    assert timer["max_s"] == 0.4


def test_merge_is_additive_for_counters_and_timers():
    ours = MetricsRegistry()
    ours.inc("cache.hit", 2)
    ours.observe("span.point", 0.3)
    theirs = MetricsRegistry()
    theirs.inc("cache.hit")
    theirs.inc("pool.build")
    theirs.observe("span.point", 0.1)
    theirs.observe("span.phase", 0.2)
    theirs.gauge("budget", 5)
    ours.merge(**{key: theirs.snapshot()[key]
                  for key in ("counters", "gauges", "timers")})
    assert ours.counters == {"cache.hit": 3, "pool.build": 1}
    assert ours.gauges == {"budget": 5}
    assert ours.timers["span.point"]["count"] == 2
    assert ours.timers["span.point"]["min_s"] == 0.1
    assert ours.timers["span.point"]["max_s"] == 0.3
    assert ours.timers["span.phase"]["count"] == 1


def test_merge_order_does_not_change_totals():
    parts = []
    for index in range(3):
        part = MetricsRegistry()
        part.inc("n", index + 1)
        part.observe("t", 0.1 * (index + 1))
        parts.append(part.snapshot())
    forward = MetricsRegistry()
    backward = MetricsRegistry()
    for snap in parts:
        forward.merge(snap["counters"], snap["gauges"], snap["timers"])
    for snap in reversed(parts):
        backward.merge(snap["counters"], snap["gauges"], snap["timers"])
    assert forward.counters == backward.counters
    assert forward.timers["t"]["count"] == backward.timers["t"]["count"]
    assert abs(forward.timers["t"]["total_s"]
               - backward.timers["t"]["total_s"]) < 1e-9


def test_snapshot_is_detached():
    metrics = MetricsRegistry()
    metrics.inc("n")
    metrics.observe("t", 0.1)
    snap = metrics.snapshot()
    metrics.inc("n")
    metrics.observe("t", 0.2)
    assert snap["counters"] == {"n": 1}
    assert snap["timers"]["t"]["count"] == 1


def test_clear():
    metrics = MetricsRegistry()
    metrics.inc("n")
    metrics.gauge("g", 1)
    metrics.observe("t", 0.1)
    metrics.clear()
    assert metrics.snapshot() == {"counters": {}, "gauges": {},
                                  "timers": {}, "histograms": {}}


def test_histogram_quantiles_bracket_observations():
    from repro.obs import Histogram
    histogram = Histogram()
    for ms in (1, 2, 4, 8, 100):
        histogram.observe(ms / 1000.0)
    # Power-of-two buckets: each quantile reports its bucket's upper
    # bound — at least the true value, at most 2x it.
    assert 0.004 <= histogram.quantile(0.5) < 0.008
    assert 0.1 <= histogram.quantile(0.99) < 0.2
    assert histogram.count == 5
    assert abs(histogram.total_s - 0.115) < 1e-9


def test_histogram_empty_and_zero():
    from repro.obs import Histogram
    histogram = Histogram()
    assert histogram.quantile(0.5) == 0.0
    assert histogram.summary()["count"] == 0
    histogram.observe(0.0)
    assert histogram.quantile(0.5) == 0.0  # bucket 0 upper bound


def test_histogram_summary_keys_are_json_scalars():
    import json
    from repro.obs import Histogram
    histogram = Histogram()
    histogram.observe(0.25)
    summary = histogram.summary()
    assert set(summary) == {"count", "total_s", "mean_s", "p50_s",
                            "p90_s", "p99_s"}
    json.dumps(summary)
    assert summary["p50_s"] <= summary["p90_s"] <= summary["p99_s"]


def test_histogram_to_dict_trims_and_round_trips():
    from repro.obs import Histogram
    histogram = Histogram()
    histogram.observe(0.001)
    data = histogram.to_dict()
    assert len(data["buckets"]) < Histogram.BUCKETS  # tail trimmed
    clone = Histogram.from_dict(data)
    assert clone.count == histogram.count
    assert clone.quantile(0.5) == histogram.quantile(0.5)


def test_histogram_merge_is_additive():
    from repro.obs import Histogram
    ours = Histogram()
    theirs = Histogram()
    for ms in (1, 2):
        ours.observe(ms / 1000.0)
    for ms in (400, 800):
        theirs.observe(ms / 1000.0)
    ours.merge_dict(theirs.to_dict())
    assert ours.count == 4
    assert ours.quantile(0.99) >= 0.4


def test_registry_histo_snapshot_and_merge():
    metrics = MetricsRegistry()
    metrics.histo("span.point", 0.002)
    metrics.histo("span.point", 0.004)
    snap = metrics.snapshot()
    assert snap["histograms"]["span.point"]["count"] == 2
    other = MetricsRegistry()
    other.histo("span.point", 0.008)
    other.histo("span.phase", 0.001)
    metrics.merge(other.snapshot()["counters"],
                  other.snapshot()["gauges"],
                  other.snapshot()["timers"],
                  other.snapshot()["histograms"])
    assert metrics.histograms["span.point"].count == 3
    assert metrics.histograms["span.phase"].count == 1
