"""Observed platform runs: jobs=1 == jobs=4, span containment, cache."""

from repro.eval.runner import ResultCache
from repro.obs import OBS, validate_trace
from repro.scenarios import default_spec, run_scenarios
from repro.scenarios.registry import get_workload
from repro.scenarios.run import apply_settings

#: Timestamp slack in microseconds (export rounds ts/dur to 3 decimals).
_EPS = 0.5


def smoke_spec(workload: str, **params):
    spec = apply_settings(default_spec(workload),
                          dict(get_workload(workload).smoke))
    if params:
        spec = spec.with_params(**params)
    spec.validate()
    return spec


def observed_run(specs, **kwargs):
    """Run scenarios under a fresh obs session; returns
    ``(results, trace document, metrics snapshot)``."""
    OBS.enable()
    try:
        results = run_scenarios(specs, **kwargs)
        return results, OBS.trace_document(), OBS.metrics.snapshot()
    finally:
        OBS.disable()


def check_partition(document):
    """Spans must partition the wall clock: no orphans, every child
    inside its parent, no sibling overlap within a lane."""
    validate_trace(document)      # includes the orphaned-parent check
    spans = [event for event in document["traceEvents"]
             if event["ph"] == "X"]
    by_id = {event["args"]["id"]: event for event in spans}
    for event in spans:
        parent_id = event["args"]["parent"]
        if parent_id is None:
            continue
        parent = by_id[parent_id]
        assert parent["ts"] - _EPS <= event["ts"], (event, parent)
        assert (event["ts"] + event["dur"]
                <= parent["ts"] + parent["dur"] + _EPS), (event, parent)
    siblings: dict = {}
    for event in spans:
        key = (event["tid"], event["args"]["parent"])
        siblings.setdefault(key, []).append(event)
    for group in siblings.values():
        group.sort(key=lambda event: event["ts"])
        for left, right in zip(group, group[1:]):
            assert left["ts"] + left["dur"] <= right["ts"] + _EPS, \
                (left, right)
    return spans


def test_jobs_1_and_jobs_4_identical_counter_totals_and_span_trees():
    specs = [smoke_spec("histogram", bins=bins) for bins in (1, 2, 4, 8)]
    serial_results, serial_doc, serial_snap = observed_run(specs, jobs=1)
    pool_results, pool_doc, pool_snap = observed_run(specs, jobs=4)

    assert pool_results == serial_results
    assert pool_snap["counters"] == serial_snap["counters"]
    assert ({name: timer["count"]
             for name, timer in pool_snap["timers"].items()}
            == {name: timer["count"]
                for name, timer in serial_snap["timers"].items()})

    serial_spans = check_partition(serial_doc)
    pool_spans = check_partition(pool_doc)
    # Same spans either way (wall-clock interleaving aside): one point
    # span per spec with the same phase children.
    assert (sorted((s["name"], s["cat"]) for s in serial_spans)
            == sorted((s["name"], s["cat"]) for s in pool_spans))
    points = [s for s in pool_spans if s["cat"] == "point"]
    assert len(points) == len(specs)
    # Serial stays on lane 0; every pooled point ran on a worker lane.
    assert {s["tid"] for s in serial_spans} == {0}
    assert 0 not in {s["tid"] for s in points}


def test_each_point_span_has_the_three_phase_children():
    specs = [smoke_spec("histogram", bins=bins) for bins in (2, 4)]
    _results, document, _snap = observed_run(specs, jobs=1)
    spans = check_partition(document)
    points = {s["args"]["id"]: s["name"]
              for s in spans if s["cat"] == "point"}
    children: dict = {}
    for span in spans:
        if span["cat"] == "phase" and span["args"]["parent"] in points:
            children.setdefault(span["args"]["parent"],
                                []).append(span["name"])
    assert all(names == ["build", "run", "collect-stats"]
               for names in children.values())
    assert len(children) == len(specs)


def test_cache_counters_roundtrip_and_sidecar_flush(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="test")
    specs = [smoke_spec("histogram", bins=bins) for bins in (2, 4)]
    OBS.enable()
    try:
        run_scenarios(specs, cache=cache)       # 2 misses, 2 stores
        run_scenarios(specs, cache=cache)       # 2 hits (early return)
        counters = dict(OBS.metrics.counters)
    finally:
        OBS.disable()
    assert counters["cache.miss"] == 2
    assert counters["cache.store"] == 2
    assert counters["cache.hit"] == 2
    # The runner flushed the sidecar: a fresh instance (fresh process,
    # as far as the sidecar cares) sees the lifetime totals.
    fresh = ResultCache(str(tmp_path), fingerprint="test")
    lifetime = fresh.lifetime_stats()
    assert lifetime["hits"] == 2
    assert lifetime["misses"] == 2
    assert lifetime["stores"] == 2
    assert lifetime["evictions"] == 0


def test_flush_counters_is_idempotent(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="test")
    cache.lookup_hash("0" * 64, None)           # miss
    cache.store_hash("0" * 64, {"x": 1})
    cache.flush_counters()
    cache.flush_counters()                      # no double counting
    cache.lookup_hash("0" * 64, None)           # hit
    cache.flush_counters()
    totals = ResultCache(str(tmp_path), fingerprint="test") \
        .lifetime_stats()
    assert totals["hits"] == 1
    assert totals["misses"] == 1
    assert totals["stores"] == 1


def test_counters_sidecar_survives_clear_and_prune(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="test")
    cache.lookup_hash("0" * 64, None)
    cache.store_hash("0" * 64, {"x": 1})
    cache.flush_counters()
    cache.clear()
    survivor = ResultCache(str(tmp_path), fingerprint="test")
    assert survivor.lifetime_stats()["stores"] == 1
    assert survivor.stats()["entries"] == 0


def test_batch_pool_counters_reconcile_with_runner():
    specs = [smoke_spec("histogram", bins=bins) for bins in (1, 2, 4)]
    OBS.enable()
    try:
        run_scenarios(specs, batch=True)
        counters = dict(OBS.metrics.counters)
    finally:
        OBS.disable()
    # One machine shape: one build, two warm resets (mirrors
    # test_batch_actually_shares_machines, through the counters).
    assert counters["pool.build"] == 1
    assert counters["pool.reset"] == 2


def test_disabled_session_records_nothing():
    # The default state: buffers (possibly holding a previous enabled
    # session's data) must not grow while the session is off.
    assert not OBS.enabled
    spans_before = len(OBS.tracer.spans)
    counters_before = dict(OBS.metrics.counters)
    run_scenarios([smoke_spec("histogram", bins=2)])
    assert len(OBS.tracer.spans) == spans_before
    assert OBS.metrics.counters == counters_before
