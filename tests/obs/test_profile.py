"""PhaseProfiler: single-active guard, accumulation, pstats dump."""

import pstats

from repro.obs import ObsSession, PhaseProfiler


def test_single_active_guard():
    profiler = PhaseProfiler()
    assert profiler.start("outer")
    assert not profiler.start("inner")      # nested phase skipped
    profiler.stop("outer", 0.5)
    assert profiler.start("inner")          # free again once released
    profiler.stop("inner", 0.1)


def test_wall_accumulates_across_occurrences():
    profiler = PhaseProfiler()
    for _ in range(3):
        assert profiler.start("run")
        profiler.stop("run", 0.2)
    assert abs(profiler.wall["run"] - 0.6) < 1e-9
    assert profiler.hottest() == "run"


def test_hottest_picks_largest_wall_deterministically():
    profiler = PhaseProfiler()
    for name, seconds in (("build", 0.1), ("run", 0.9),
                          ("collect-stats", 0.2)):
        assert profiler.start(name)
        profiler.stop(name, seconds)
    assert profiler.hottest() == "run"


def test_dump_writes_loadable_pstats(tmp_path):
    profiler = PhaseProfiler()
    assert profiler.start("run")
    sum(i * i for i in range(1000))
    profiler.stop("run", 0.01)
    out = tmp_path / "profile.pstats"
    assert profiler.dump(str(out)) == "run"
    stats = pstats.Stats(str(out))
    assert stats.total_calls > 0


def test_dump_with_no_phases_returns_none(tmp_path):
    assert PhaseProfiler().dump(str(tmp_path / "empty")) is None


def test_session_profiles_only_phase_spans(tmp_path):
    session = ObsSession()
    session.enable(profile=True)
    with session.span("point-like", cat="point"):    # not profiled
        with session.span("run", cat="phase"):       # profiled
            sum(i * i for i in range(1000))
    session.disable()
    assert session.profiler.wall == {"run": session.profiler.wall["run"]}
    out = tmp_path / "profile.pstats"
    assert session.dump_profile(str(out)) == "run"
    pstats.Stats(str(out))


def test_dump_profile_without_profiling_returns_none(tmp_path):
    session = ObsSession()
    session.enable(profile=False)
    with session.span("run", cat="phase"):
        pass
    session.disable()
    assert session.dump_profile(str(tmp_path / "none")) is None
