"""`repro status`: reconstruction from event log + heartbeats + journal."""

import json
import os
import time

import pytest

from repro.engine.errors import ConfigError
from repro.obs import (EventLog, Heartbeat, collect_status, follow,
                       render_status)
from repro.obs.eventlog import events_path
from repro.obs.heartbeat import heartbeat_dir
from repro.obs.status import aggregate_events, resolve_campaign_dir


def _emit_campaign(log, budget=4, finish="complete"):
    log.emit("campaign_started", workload="mixed", sampler="grid",
             budget=budget, seed=7, jobs=1, batch=8, resumed=0)
    log.emit("batch_scheduled", batch=0, rung=0, points=budget,
             fresh=budget)
    for index in range(budget):
        spec = f"spec{index:04d}babe"
        log.emit("point_started", spec_hash=spec)
        log.emit("point_finished", spec_hash=spec, cache_hit=False,
                 paid=True, wall_ms=10.0 + index)
    log.emit("journal_written", evaluations=budget, status=finish)
    if finish is not None:
        log.emit("campaign_finished", status=finish, points=budget,
                 paid=budget)


def _campaign_dir(tmp_path, budget=4, finish="complete"):
    directory = tmp_path / "camp"
    directory.mkdir()
    with EventLog(events_path(str(directory))) as log:
        _emit_campaign(log, budget=budget, finish=finish)
    return directory


def test_resolve_campaign_dir_accepts_dir_journal_and_events(tmp_path):
    directory = _campaign_dir(tmp_path)
    (directory / "journal.json").write_text("{}")
    expected = str(directory)
    assert resolve_campaign_dir(expected) == expected
    assert os.path.abspath(resolve_campaign_dir(
        str(directory / "journal.json"))) == os.path.abspath(expected)
    assert os.path.abspath(resolve_campaign_dir(
        str(directory / "events.jsonl"))) == os.path.abspath(expected)
    with pytest.raises(ConfigError, match="cannot read"):
        resolve_campaign_dir(str(tmp_path / "nope"))


def test_aggregate_counts_one_session(tmp_path):
    directory = _campaign_dir(tmp_path, budget=3)
    from repro.obs import read_events
    records, _ = read_events(events_path(str(directory)))
    agg = aggregate_events(records)
    assert agg["sessions"] == 1
    assert agg["campaign"]["budget"] == 3
    assert agg["finished"]["status"] == "complete"
    assert agg["batches"] == 1
    assert agg["points"] == 3
    assert agg["paid"] == 3
    assert agg["free"] == 0
    assert agg["inflight"] == 0
    assert agg["wall"]["count"] == 3
    assert agg["wall"]["p50_s"] > 0


def test_aggregate_uses_last_session_only(tmp_path):
    directory = tmp_path / "camp"
    directory.mkdir()
    with EventLog(events_path(str(directory))) as log:
        _emit_campaign(log, budget=2, finish=None)  # killed session
    # resume: a fresh writer session appends to the same file
    with EventLog(events_path(str(directory))) as log:
        _emit_campaign(log, budget=5, finish="complete")
    from repro.obs import read_events
    records, _ = read_events(events_path(str(directory)))
    agg = aggregate_events(records)
    assert agg["sessions"] == 2
    assert agg["points"] == 5  # not 7: replay re-emits within a session
    assert agg["events_total"] > agg["events"]


def test_aggregate_tracks_inflight_points(tmp_path):
    directory = tmp_path / "camp"
    directory.mkdir()
    with EventLog(events_path(str(directory))) as log:
        log.emit("campaign_started", workload="mixed", sampler="grid",
                 budget=4)
        log.emit("point_started", spec_hash="aaaa")
        log.emit("point_started", spec_hash="bbbb")
        log.emit("point_finished", spec_hash="aaaa", cache_hit=False,
                 paid=True, wall_ms=5.0)
    from repro.obs import read_events
    records, _ = read_events(events_path(str(directory)))
    assert aggregate_events(records)["inflight"] == 1


def test_collect_status_finished_campaign(tmp_path):
    directory = _campaign_dir(tmp_path, budget=4)
    status = collect_status(str(directory))
    assert status["state"] == "finished (complete)"
    assert status["fraction"] == 1.0
    assert status["points"] == 4
    assert status["paid"] == 4
    assert status["free"] == 0
    assert status["eta_s"] is None
    assert status["workers"] == []
    assert status["warnings"] == []


def test_collect_status_killed_campaign_reports_partial(tmp_path):
    # No campaign_finished, no heartbeats (pid gone takes its file's
    # meaning from liveness below), no journal: partial progress must
    # still be reported from the event log alone.
    directory = tmp_path / "camp"
    directory.mkdir()
    with EventLog(events_path(str(directory))) as log:
        log.emit("campaign_started", workload="mixed", sampler="grid",
                 budget=10)
        log.emit("batch_scheduled", batch=0, points=4, fresh=4)
        for index in range(3):
            spec = f"spec{index}"
            log.emit("point_started", spec_hash=spec)
            log.emit("point_finished", spec_hash=spec, cache_hit=False,
                     paid=True, wall_ms=20.0)
    status = collect_status(str(directory))
    assert status["state"] == "interrupted (event log only)"
    assert status["points"] == 3
    assert status["budget"] == 10
    assert status["fraction"] == pytest.approx(0.3)


def test_collect_status_dead_coordinator_heartbeat(tmp_path):
    directory = _campaign_dir(tmp_path, budget=2, finish=None)
    hb_dir = heartbeat_dir(str(directory))
    os.makedirs(hb_dir)
    bogus_pid = 2 ** 22 + 54321
    record = {"version": 1, "pid": bogus_pid, "role": "coordinator",
              "interval": 0.5, "started_ts": time.time(),
              "beat_ts": time.time(), "beats": 9, "points": 2,
              "current": None, "last_seq": 11}
    with open(os.path.join(hb_dir, f"hb-{bogus_pid}.json"), "w") as out:
        json.dump(record, out)
    status = collect_status(str(directory))
    assert status["state"].startswith("dead (coordinator pid")
    assert status["workers"][0]["liveness"] == "dead"


def test_collect_status_live_coordinator_is_running(tmp_path):
    directory = _campaign_dir(tmp_path, budget=2, finish=None)
    monitor = Heartbeat(heartbeat_dir(str(directory)),
                        role="coordinator", interval=9.0)
    monitor.update(points=2, last_seq=9)
    try:
        status = collect_status(str(directory))
        assert status["state"] == "running"
        assert status["eta_s"] is None or status["eta_s"] >= 0
    finally:
        monitor.stop()


def test_collect_status_finished_event_beats_stale_heartbeat(tmp_path):
    # campaign_finished is the strongest evidence: even a surviving
    # (unclean) heartbeat file must not flip the verdict.
    directory = _campaign_dir(tmp_path, budget=2, finish="complete")
    monitor = Heartbeat(heartbeat_dir(str(directory)),
                        role="coordinator", interval=9.0)
    monitor.beat()
    try:
        status = collect_status(str(directory))
        assert status["state"] == "finished (complete)"
    finally:
        monitor.stop()


def test_collect_status_journal_only_directory(tmp_path):
    directory = tmp_path / "camp"
    directory.mkdir()
    journal = {"status": "complete",
               "campaign": {"budget": 2},
               "evaluations": [
                   {"spec_hash": "a", "cached": False},
                   {"spec_hash": "b", "cached": True, "cache_hit": True},
               ]}
    (directory / "journal.json").write_text(json.dumps(journal))
    status = collect_status(str(directory))
    assert status["state"] == "finished (complete)"
    assert status["points"] == 2
    assert status["paid"] == 1
    assert status["cache_hits"] == 1


def test_collect_status_empty_directory(tmp_path):
    status = collect_status(str(tmp_path))
    assert status["state"] == "unknown (no artifacts)"
    assert status["points"] == 0


def test_collect_status_warns_when_journal_trails_events(tmp_path):
    directory = _campaign_dir(tmp_path, budget=4, finish=None)
    journal = {"status": "partial", "campaign": {"budget": 4},
               "evaluations": [{"spec_hash": "a", "cached": False}]}
    (directory / "journal.json").write_text(json.dumps(journal))
    status = collect_status(str(directory))
    assert any("journal trails event log" in warning
               for warning in status["warnings"])
    # Events are fresher: figures come from them, not the journal.
    assert status["points"] == 4


def test_collect_status_is_json_serializable(tmp_path):
    directory = _campaign_dir(tmp_path)
    json.dumps(collect_status(str(directory)))


def test_render_status_shows_bar_figures_and_workers(tmp_path):
    directory = _campaign_dir(tmp_path, budget=4)
    monitor = Heartbeat(heartbeat_dir(str(directory)),
                        role="coordinator", interval=9.0)
    monitor.update(points=4, last_seq=13)
    try:
        text = render_status(collect_status(str(directory)), width=20)
    finally:
        monitor.stop()
    assert "state:    finished (complete)" in text
    assert "[####################] 100.0%" in text
    assert "(4/4 paid, 0 free)" in text
    assert "points finished" in text
    assert "coordinator" in text
    assert str(os.getpid()) in text


def test_render_status_unknown_fraction_uses_placeholder(tmp_path):
    text = render_status(collect_status(str(tmp_path)), width=8)
    assert "[????????]" in text


def test_follow_stops_on_finished_and_returns_status(tmp_path):
    directory = _campaign_dir(tmp_path, budget=2)
    frames = []
    status = follow(str(directory), interval=0.0,
                    echo=frames.append, sleep=lambda _s: None)
    assert status["state"] == "finished (complete)"
    assert any("100.0%" in frame for frame in frames)


def test_follow_timeout_bounds_a_live_campaign(tmp_path):
    directory = _campaign_dir(tmp_path, budget=4, finish=None)
    monitor = Heartbeat(heartbeat_dir(str(directory)),
                        role="coordinator", interval=9.0)
    monitor.beat()
    clock_value = [0.0]

    def clock():
        clock_value[0] += 1.0
        return clock_value[0]

    try:
        status = follow(str(directory), interval=0.5, timeout=2.0,
                        echo=lambda _t: None, sleep=lambda _s: None,
                        clock=clock)
    finally:
        monitor.stop()
    assert status["state"] == "running"
    assert any("timeout" in warning for warning in status["warnings"])
