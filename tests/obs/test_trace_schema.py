"""Trace export + schema validation, accept and reject paths."""

import copy
import json

import pytest

from repro.obs import ObsSession, SchemaError, validate_trace
from repro.obs.schema import main as schema_main


def _session_with_spans():
    session = ObsSession()
    session.enable()
    with session.span("campaign", cat="campaign"):
        with session.span("point", cat="point", bins=4):
            with session.span("run", cat="phase"):
                pass
    session.inc("cache.miss")
    session.gauge("campaign.budget_remaining", 3)
    session.disable()
    return session


def test_exported_trace_validates(tmp_path):
    session = _session_with_spans()
    path = session.export_chrome_trace(str(tmp_path / "trace.json"))
    with open(path) as stream:
        data = json.load(stream)
    validate_trace(data)
    x_events = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in x_events] == ["campaign", "point", "run"]
    assert x_events[1]["args"]["bins"] == 4
    assert data["otherData"]["counters"] == {"cache.miss": 1}
    assert data["otherData"]["timers"]["span.point"]["count"] == 1
    # ts/dur are microseconds relative to enable(): small and ordered.
    assert 0 <= x_events[0]["ts"] <= x_events[1]["ts"] <= x_events[2]["ts"]


def test_export_creates_parent_directories(tmp_path):
    session = _session_with_spans()
    path = str(tmp_path / "deep" / "dir" / "trace.json")
    assert session.export_chrome_trace(path) == path
    with open(path) as stream:
        validate_trace(json.load(stream))


def _valid_document():
    return _session_with_spans().trace_document()


@pytest.mark.parametrize("mutate,match", [
    (lambda d: d.pop("traceEvents"), "missing key 'traceEvents'"),
    (lambda d: d["traceEvents"].append({"name": "x"}), "missing key"),
    (lambda d: d["traceEvents"][-1].update(ph="B"), "ph must be one of"),
    (lambda d: d["traceEvents"][-1].update(ts=-1.0), "ts must be >= 0"),
    (lambda d: d["traceEvents"][-1]["args"].pop("parent"),
     "missing key 'parent'"),
    (lambda d: d["traceEvents"][-1]["args"].update(parent="zero"),
     "parent must be a span id or null"),
    (lambda d: d["traceEvents"][-1]["args"].update(parent=999),
     "orphaned span"),
    (lambda d: d["traceEvents"][-1]["args"].update(
        id=d["traceEvents"][-2]["args"]["id"]), "duplicate span id"),
    (lambda d: d["otherData"].update(counters={"n": 1.5}),
     "must be an int"),
    (lambda d: d["otherData"]["timers"]["span.point"].pop("total_s"),
     "missing key 'total_s'"),
    (lambda d: d["traceEvents"].append(
        {"name": "mystery", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "x"}}), "unknown metadata event"),
])
def test_validate_rejects_malformed_traces(mutate, match):
    document = copy.deepcopy(_valid_document())
    mutate(document)
    with pytest.raises(SchemaError, match=match):
        validate_trace(document)


def test_validate_accepts_trace_without_other_data():
    document = _valid_document()
    document.pop("otherData")
    validate_trace(document)


def test_schema_cli_ok_and_reject(tmp_path, capsys):
    session = _session_with_spans()
    good = session.export_chrome_trace(str(tmp_path / "good.json"))
    assert schema_main([good]) == 0
    out = capsys.readouterr().out
    assert "ok (trace: 3 spans, 1 counters)" in out

    bad = tmp_path / "bad.json"
    document = _valid_document()
    document["traceEvents"][-1]["args"]["parent"] = 999
    bad.write_text(json.dumps(document))
    assert schema_main([str(bad)]) == 2
    assert "orphaned span" in capsys.readouterr().out

    assert schema_main([str(tmp_path / "missing.json")]) == 2
    assert schema_main([]) == 2
