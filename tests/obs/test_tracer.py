"""SpanTracer + ObsSession span handles: nesting, null path, merge."""

import pickle

from repro.obs import ObsSession
from repro.obs.session import _NULL_SPAN
from repro.obs.tracer import SpanTracer


def test_spans_nest_and_record_parentage():
    tracer = SpanTracer()
    outer = tracer.begin("campaign", "campaign", {})
    inner = tracer.begin("point", "point", {"bins": 4})
    assert inner["parent"] == outer["id"]
    assert tracer.current is inner
    tracer.end(inner)
    tracer.end(outer)
    assert tracer.current is None
    assert [span["name"] for span in tracer.spans] == ["point", "campaign"]
    assert all(span["end"] >= span["start"] for span in tracer.spans)


def test_out_of_order_end_force_closes_inner_spans():
    # An exception unwinding past inner spans closes them all at the
    # same instant -- the buffer never holds a torn stack.
    tracer = SpanTracer()
    outer = tracer.begin("outer", "phase", {})
    tracer.begin("inner", "phase", {})
    tracer.end(outer)
    assert tracer.current is None
    assert len(tracer.spans) == 2
    assert all(span["end"] is not None for span in tracer.spans)


def test_ids_are_unique_and_monotonic():
    tracer = SpanTracer()
    spans = [tracer.begin(f"s{i}", "phase", {}) for i in range(4)]
    for span in reversed(spans):
        tracer.end(span)
    assert [span["id"] for span in spans] == [0, 1, 2, 3]


def test_disabled_session_returns_shared_null_span():
    session = ObsSession()
    assert session.span("anything", cat="point", bins=4) is _NULL_SPAN
    with session.span("anything") as span:
        assert span is None
    assert session.tracer.spans == []


def test_session_span_feeds_cat_timer():
    session = ObsSession()
    session.enable()
    with session.span("build", cat="phase"):
        pass
    with session.span("p0", cat="point"):
        pass
    with session.span("p1", cat="point"):
        pass
    session.disable()
    assert session.metrics.timers["span.phase"]["count"] == 1
    assert session.metrics.timers["span.point"]["count"] == 2


def test_enable_drops_previous_recording():
    session = ObsSession()
    session.enable()
    with session.span("stale"):
        pass
    session.inc("stale.counter")
    session.enable()
    assert session.tracer.spans == []
    assert session.metrics.counters == {}


def test_merge_worker_rebases_ids_and_adopts_under_open_span():
    parent = ObsSession()
    parent.enable()
    worker = ObsSession()
    worker.enable()
    with worker.span("point", cat="point"):
        with worker.span("run", cat="phase"):
            pass
    worker.inc("cache.miss")
    worker.disable()
    # Snapshots must survive a pickle round-trip (pool.map transport).
    snap = pickle.loads(pickle.dumps(worker.snapshot()))

    with parent.span("schedule-batch", cat="schedule") as open_span:
        parent.merge_worker(snap)
    parent.disable()

    by_name = {span["name"]: span for span in parent.tracer.spans}
    assert by_name["point"]["parent"] == open_span["id"]
    assert by_name["run"]["parent"] == by_name["point"]["id"]
    assert by_name["point"]["track"] == by_name["run"]["track"] == 1
    assert by_name["schedule-batch"]["track"] == 0
    ids = [span["id"] for span in parent.tracer.spans]
    assert len(ids) == len(set(ids))
    assert parent.metrics.counters["cache.miss"] == 1
    # Worker span.* timers merged too.
    assert parent.metrics.timers["span.point"]["count"] == 1


def test_merge_worker_assigns_stable_lanes_by_first_appearance():
    parent = ObsSession()
    parent.enable()
    snaps = []
    for pid in (111, 222, 111):
        worker = ObsSession()
        worker.enable()
        with worker.span("point", cat="point"):
            pass
        snap = worker.snapshot()
        snap["pid"] = pid
        snaps.append(snap)
    for snap in snaps:
        parent.merge_worker(snap)
    parent.disable()
    tracks = [span["track"] for span in parent.tracer.spans]
    assert tracks == [1, 2, 1]


def test_merged_ids_do_not_collide_with_later_parent_spans():
    parent = ObsSession()
    parent.enable()
    worker = ObsSession()
    worker.enable()
    with worker.span("point", cat="point"):
        pass
    parent.merge_worker(worker.snapshot())
    with parent.span("late", cat="phase"):
        pass
    parent.disable()
    ids = [span["id"] for span in parent.tracer.spans]
    assert len(ids) == len(set(ids))
