"""Tests for the Table I area model."""

import pytest

from repro.power.area import (
    PAPER_TABLE1,
    TILE_BASE_KGE,
    base_tile,
    colibri_tile,
    lrscwait_tile,
    system_overhead_kge,
    table1_rows,
)


def test_base_tile_matches_paper():
    assert base_tile().kge == PAPER_TABLE1["MemPool tile"][0]
    assert base_tile().percent == 100.0


@pytest.mark.parametrize("slots,label", [(1, "with LRSCwait_1"),
                                         (8, "with LRSCwait_8")])
def test_lrscwait_rows_close_to_paper(slots, label):
    model = lrscwait_tile(slots).kge
    paper = PAPER_TABLE1[label][0]
    assert abs(model - paper) / paper < 0.02


@pytest.mark.parametrize("addresses", [1, 2, 4, 8])
def test_colibri_rows_close_to_paper(addresses):
    tile = colibri_tile(addresses)
    paper = PAPER_TABLE1[tile.label][0]
    assert abs(tile.kge - paper) / paper < 0.02


def test_colibri_cheaper_than_equivalent_lrscwait():
    """The paper's point: 8 Colibri queues cost about as much as a
    single-slot central queue, and far less than 8 slots."""
    assert colibri_tile(8).kge < lrscwait_tile(8).kge
    assert abs(colibri_tile(8).kge - lrscwait_tile(1).kge) < 30


def test_ideal_lrscwait_physically_infeasible():
    """§III-A: sizing every bank's queue for 256 cores multiplies the
    tile area — 'physically infeasible for a system of MemPool's
    scale'."""
    ideal = lrscwait_tile(256).kge
    assert ideal > 3 * TILE_BASE_KGE


def test_system_scaling_quadratic_vs_linear():
    """Total added area: the ideal queue grows ~quadratically with
    cores, Colibri linearly."""
    ideal_small = system_overhead_kge(64, "lrscwait_ideal")
    ideal_large = system_overhead_kge(256, "lrscwait_ideal")
    colibri_small = system_overhead_kge(64, "colibri")
    colibri_large = system_overhead_kge(256, "colibri")
    assert ideal_large / ideal_small > 10      # ~16x for 4x cores
    assert 3 < colibri_large / colibri_small < 5  # ~4x for 4x cores


def test_overhead_monotone_in_parameters():
    assert lrscwait_tile(2).kge > lrscwait_tile(1).kge
    assert colibri_tile(8).kge > colibri_tile(1).kge


def test_unknown_kind_rejected():
    """Unknown kinds route through the variant registry's ConfigError
    subclass (not a bare ValueError), so CLI paths exit 2."""
    from repro.engine.errors import ConfigError
    from repro.memory.variants import UnknownVariantError
    with pytest.raises(UnknownVariantError):
        system_overhead_kge(64, "bogus")
    assert issubclass(UnknownVariantError, ConfigError)


def test_registered_kinds_all_have_overheads():
    """Every registered variant evaluates through the registry hooks
    (pre-registry, only three kinds were accepted)."""
    from repro.memory.variants import list_variants
    for name, _plugin in list_variants():
        assert system_overhead_kge(64, name) >= 0.0


def test_table1_rows_cover_all_published_rows():
    labels = {tile.label for tile in table1_rows()}
    assert labels == set(PAPER_TABLE1)
