"""Tests for the Table II energy model."""

from repro import VariantSpec
from repro.engine.stats import BankStats, CoreStats, NetworkStats, SimStats
from repro.power.energy import EnergyCoefficients, EnergyModel

from ..conftest import (
    increment_kernel_amo,
    increment_kernel_lrsc,
    increment_kernel_wait,
    make_machine,
)


def synthetic_stats():
    stats = SimStats(cores=[CoreStats(0)], banks=[BankStats(0)],
                     network=NetworkStats())
    stats.cores[0].active_cycles = 100
    stats.cores[0].stalled_cycles = 50
    stats.cores[0].sleep_cycles = 1000
    stats.cores[0].ops_completed = 10
    stats.banks[0].accesses = 30
    stats.network.hops = 60
    stats.cycles = 1200
    return stats


def test_energy_breakdown_arithmetic():
    coeff = EnergyCoefficients(active_cycle_pj=1.0, stall_cycle_pj=0.5,
                               sleep_cycle_pj=0.1, bank_access_pj=2.0,
                               hop_pj=0.5)
    report = EnergyModel(coeff).evaluate(synthetic_stats())
    assert report.core_pj == 100 * 1.0 + 50 * 0.5 + 1000 * 0.1
    assert report.bank_pj == 60.0
    assert report.network_pj == 30.0
    assert report.total_pj == report.core_pj + 60 + 30
    assert report.pj_per_op == report.total_pj / 10


def test_power_conversion():
    report = EnergyModel().evaluate(synthetic_stats())
    # P = E / t; t = cycles / f.
    expected = report.total_pj * 1e-12 / (1200 / 600e6) * 1e3
    assert abs(report.power_mw() - expected) < 1e-9


def test_zero_ops_gives_infinite_energy_per_op():
    stats = synthetic_stats()
    stats.cores[0].ops_completed = 0
    report = EnergyModel().evaluate(stats)
    assert report.pj_per_op == float("inf")


def run_increment(variant, kernel_builder, cores=8, updates=6, seed=5):
    machine = make_machine(cores, variant, seed=seed)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(kernel_builder(counter, updates))
    stats = machine.run()
    assert machine.peek(counter) == cores * updates
    return EnergyModel().evaluate(stats)


def test_table2_energy_ordering_emerges_from_behaviour():
    """AMO < Colibri < LRSC in pJ/op at full contention — the Table II
    ordering must come out of event counts, not hand-tuning."""
    amo = run_increment(VariantSpec.amo(), increment_kernel_amo)
    colibri = run_increment(VariantSpec.colibri(), increment_kernel_wait)
    lrsc = run_increment(VariantSpec.lrsc(), increment_kernel_lrsc)
    assert amo.pj_per_op < colibri.pj_per_op < lrsc.pj_per_op
    # The paper's headline gap (7.1x at 256 cores) shrinks with core
    # count; at 8 cores a ~3x separation is already decisive.
    assert lrsc.pj_per_op / colibri.pj_per_op > 2.5


def test_sleeping_is_cheaper_than_polling():
    colibri = run_increment(VariantSpec.colibri(), increment_kernel_wait)
    lrsc = run_increment(VariantSpec.lrsc(), increment_kernel_lrsc)
    assert colibri.core_pj < lrsc.core_pj
    assert colibri.network_pj < lrsc.network_pj


def test_relative_to_baseline():
    amo = run_increment(VariantSpec.amo(), increment_kernel_amo)
    colibri = run_increment(VariantSpec.colibri(), increment_kernel_wait)
    assert colibri.relative_to(amo) > 1.0
    assert abs(colibri.relative_to(colibri) - 1.0) < 1e-12
