"""Property-based whole-system tests: atomicity, FIFO order, progress.

Each property runs a real simulation with hypothesis-chosen shape
(core count, contention, jitter, seed) and asserts the invariants the
paper's §III guarantees:

* mutual exclusion / atomicity — counters conserve updates;
* starvation freedom — FIFO grant order on LRSCwait/Colibri;
* retry freedom — no failed SCwaits without interfering plain stores.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine, SystemConfig, VariantSpec
from repro.interconnect.messages import Status

SIM_SETTINGS = settings(max_examples=15, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])

variants = st.sampled_from([
    VariantSpec.lrsc(),
    VariantSpec.lrscwait(1),
    VariantSpec.lrscwait(4),
    VariantSpec.lrscwait_ideal(),
    VariantSpec.colibri(num_addresses=1),
    VariantSpec.colibri(num_addresses=4),
])


def increment_kernel(counter, updates, use_wait, max_jitter):
    def kernel(api):
        for _ in range(updates):
            jitter = api.rng.randrange(max_jitter + 1)
            yield from api.compute(jitter)
            if use_wait:
                while True:
                    resp = yield from api.lrwait(counter)
                    if resp.status is Status.QUEUE_FULL:
                        yield from api.compute(4 + api.rng.randrange(12))
                        continue
                    ok = yield from api.scwait(counter, resp.value + 1)
                    if ok:
                        break
            else:
                attempt = 0
                while True:
                    value = yield from api.lr(counter)
                    ok = yield from api.sc(counter, value + 1)
                    if ok:
                        break
                    window = min(512, 8 << min(attempt, 6))
                    yield from api.compute(api.rng.randrange(1, window))
                    attempt += 1
            yield from api.retire()
    return kernel


@SIM_SETTINGS
@given(variant=variants,
       num_cores=st.sampled_from([4, 8, 16]),
       updates=st.integers(1, 6),
       max_jitter=st.integers(0, 40),
       seed=st.integers(0, 1000))
def test_counter_conserves_updates(variant, num_cores, updates,
                                   max_jitter, seed):
    machine = Machine(SystemConfig.scaled(num_cores), variant, seed=seed)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(increment_kernel(counter, updates,
                                      variant.supports_wait, max_jitter))
    stats = machine.run()
    assert machine.peek(counter) == num_cores * updates
    assert stats.total_ops == num_cores * updates


@SIM_SETTINGS
@given(variant=st.sampled_from([VariantSpec.lrscwait_ideal(),
                                VariantSpec.colibri()]),
       num_cores=st.sampled_from([4, 8]),
       seed=st.integers(0, 1000))
def test_wait_rmw_is_retry_free_without_interference(variant, num_cores,
                                                     seed):
    """§III: with no plain stores to the variable, no SCwait ever
    fails — the retry loop is gone by construction."""
    machine = Machine(SystemConfig.scaled(num_cores), variant, seed=seed)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(increment_kernel(counter, 4, True, 20))
    stats = machine.run()
    assert stats.total_sc_failures == 0


@SIM_SETTINGS
@given(num_cores=st.sampled_from([4, 8, 16]),
       hold=st.integers(0, 60),
       seed=st.integers(0, 1000))
def test_colibri_grants_fifo_by_arrival(num_cores, hold, seed):
    """Starvation freedom: cores arriving earlier are served earlier.

    Cores stagger their single LRwait with strictly increasing delays,
    so arrival order equals core order; the observed old values must
    then increase with core id."""
    machine = Machine(SystemConfig.scaled(num_cores),
                      VariantSpec.colibri(), seed=seed)
    counter = machine.allocator.alloc_interleaved(1)
    observed = {}

    def kernel(api):
        # Stagger far beyond any message latency to pin arrival order.
        yield from api.compute(1 + api.core_id * 50)
        resp = yield from api.lrwait(counter)
        observed[api.core_id] = resp.value
        yield from api.compute(hold)
        yield from api.scwait(counter, resp.value + 1)

    machine.load_all(kernel)
    machine.run()
    grants = [observed[core] for core in sorted(observed)]
    assert grants == sorted(grants)
    assert machine.peek(counter) == num_cores


@SIM_SETTINGS
@given(num_cores=st.sampled_from([4, 8]),
       updates=st.integers(1, 4),
       seed=st.integers(0, 1000))
def test_every_core_makes_progress(num_cores, updates, seed):
    """No starvation: with FIFO hardware queues every loaded kernel
    finishes (the run would raise DeadlockError otherwise)."""
    machine = Machine(SystemConfig.scaled(num_cores),
                      VariantSpec.colibri(), seed=seed)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(increment_kernel(counter, updates, True, 10))
    machine.run()
    assert all(core.finished for core in machine.cores
               if core in machine._loaded)
