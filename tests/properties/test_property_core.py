"""Property-based tests (hypothesis) for core data structures."""

from hypothesis import given, settings, strategies as st

from repro.arch.address_map import AddressMap
from repro.arch.config import SystemConfig
from repro.interconnect.network import ThrottledPort
from repro.memory.bank import SpmBank
from repro.sync.backoff import ExponentialBackoff, FixedBackoff

import random


@given(words=st.integers(1, 64),
       writes=st.lists(st.tuples(st.integers(0, 63),
                                 st.integers(-2 ** 40, 2 ** 40)),
                       max_size=50))
def test_bank_values_always_word_masked(words, writes):
    bank = SpmBank(0, words)
    for row, value in writes:
        bank.write(row % words, value)
    for row in range(words):
        assert 0 <= bank.read(row) <= 0xFFFF_FFFF


@given(value=st.integers(0, 0xFFFF_FFFF))
def test_to_signed_roundtrip(value):
    bank = SpmBank(0, 1)
    signed = bank.to_signed(value)
    assert -(1 << 31) <= signed < (1 << 31)
    assert signed & 0xFFFF_FFFF == value


@given(num_cores=st.sampled_from([4, 8, 16, 32, 64]),
       word=st.integers(0, 2000))
def test_address_map_locate_inverse(num_cores, word):
    amap = AddressMap(SystemConfig.scaled(num_cores))
    word = word % amap.num_banks * amap.words_per_bank if False else word
    addr = (word % (amap.num_banks * amap.words_per_bank)) * 4
    bank, row = amap.locate(addr)
    assert amap.address_of(bank, row) == addr


@given(per_cycle=st.integers(1, 4),
       arrivals=st.lists(st.integers(0, 50), min_size=1, max_size=60))
def test_throttled_port_invariants(per_cycle, arrivals):
    """Slots never precede arrival, never decrease across FIFO calls,
    and never exceed the per-cycle budget."""
    port = ThrottledPort(per_cycle)
    arrivals = sorted(arrivals)  # FIFO callers present ordered arrivals
    slots = [port.next_slot(arrival) for arrival in arrivals]
    for arrival, slot in zip(arrivals, slots):
        assert slot >= arrival
    assert slots == sorted(slots)
    per_slot_counts = {}
    for slot in slots:
        per_slot_counts[slot] = per_slot_counts.get(slot, 0) + 1
    assert all(count <= per_cycle for count in per_slot_counts.values())


@given(window=st.integers(1, 4096), attempt=st.integers(0, 100),
       seed=st.integers(0, 2 ** 20))
def test_fixed_backoff_always_in_window(window, attempt, seed):
    policy = FixedBackoff(window)
    delay = policy.delay(random.Random(seed), attempt)
    assert 1 <= delay <= window


@given(base=st.integers(1, 64), cap=st.integers(64, 8192),
       attempt=st.integers(0, 10 ** 9), seed=st.integers(0, 2 ** 20))
def test_exponential_backoff_always_in_cap(base, cap, attempt, seed):
    policy = ExponentialBackoff(base=base, cap=cap)
    delay = policy.delay(random.Random(seed), attempt)
    assert 1 <= delay <= cap
