"""Differential testing: adapters vs a functional reference model.

A :class:`ReferenceMemory` executes request sequences *functionally*
(no timing, no queues): loads read, stores write, AMOs read-modify-
write.  For any interleaving of operations, the committed-store history
of a real adapter must produce exactly the same memory contents as the
reference executing the same committed stores — and the values returned
by successful RMW sequences must chain correctly.

Hypothesis drives random single-bank scenarios through the LRSC-family
adapters (including the related-work variants); the property is that
**memory contents always equal the reference replay of the responses
the adapter itself claimed succeeded**.  This catches any divergence
between claimed and actual commits (e.g. a failed SC leaking a write,
or a lost AMO).
"""

from hypothesis import given, settings, strategies as st

from repro.interconnect.messages import AMO_OPS, Op, Status
from repro.memory.adapter import AmoAdapter
from repro.memory.lrsc import LrscAdapter
from repro.memory.lrsc_variants import LrscBankAdapter, LrscTableAdapter

from ..memory.fake_controller import FakeController, request

WORDS = 8
MASK = 0xFFFF_FFFF


class ReferenceMemory:
    """Functional replay of committed operations."""

    def __init__(self) -> None:
        self.words = [0] * WORDS

    def apply(self, op: Op, addr: int, value: int) -> None:
        row = addr // 4
        if op is Op.SW or op is Op.SC or op is Op.SCWAIT:
            self.words[row] = value & MASK
        elif op is Op.AMO_ADD:
            self.words[row] = (self.words[row] + value) & MASK
        elif op is Op.AMO_SWAP:
            self.words[row] = value & MASK
        elif op is Op.AMO_AND:
            self.words[row] &= value
        elif op is Op.AMO_OR:
            self.words[row] |= value & MASK
        elif op is Op.AMO_XOR:
            self.words[row] ^= value & MASK


def adapter_strategies():
    return st.sampled_from([AmoAdapter, LrscAdapter, LrscTableAdapter,
                            LrscBankAdapter])


def op_strategy(adapter_cls):
    write_ops = [Op.SW, Op.AMO_ADD, Op.AMO_SWAP, Op.AMO_AND, Op.AMO_OR,
                 Op.AMO_XOR]
    ops = [Op.LW] + write_ops
    if adapter_cls is not AmoAdapter:
        ops += [Op.LR, Op.SC, Op.SC]  # SCs more likely than LRs
    return st.tuples(
        st.sampled_from(ops),
        st.integers(0, 3),                  # core id
        st.integers(0, WORDS - 1),          # word index
        st.integers(0, MASK),               # value
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_adapter_memory_matches_reference_replay(data):
    adapter_cls = data.draw(adapter_strategies())
    sequence = data.draw(st.lists(op_strategy(adapter_cls),
                                  min_size=1, max_size=60))
    ctrl = FakeController(words=WORDS)
    adapter = adapter_cls(ctrl)
    reference = ReferenceMemory()

    for op, core, word, value in sequence:
        addr = word * 4
        before = len(ctrl.responses)
        adapter.handle(request(op, core=core, addr=addr, value=value))
        response = ctrl.responses[before]
        if op is Op.LW or op is Op.LR:
            # Reads must return exactly the reference contents.
            assert response.value == reference.words[word]
            continue
        if op is Op.SC:
            if response.status is Status.OK:
                reference.apply(op, addr, value)
            continue
        # Unconditional writes always commit.
        assert response.status is Status.OK
        if op in AMO_OPS:
            assert response.value == reference.words[word]  # old value
        reference.apply(op, addr, value)

    assert [ctrl.bank.read(row) for row in range(WORDS)] == reference.words


@settings(max_examples=40, deadline=None)
@given(seq=st.lists(st.tuples(st.integers(0, 3), st.integers(0, WORDS - 1)),
                    min_size=1, max_size=40))
def test_sc_success_implies_exclusive_window(seq):
    """For the single-slot adapter: an SC succeeds iff no other LR or
    committed store touched the slot since the matching LR — replayed
    against a model of the slot itself."""
    ctrl = FakeController(words=WORDS)
    adapter = LrscAdapter(ctrl)
    model_slot = None  # (core, addr) or None
    for core, word in seq:
        addr = word * 4
        # Alternate LR/SC per core deterministically from the data.
        if model_slot is None or model_slot[0] != core:
            adapter.handle(request(Op.LR, core=core, addr=addr))
            model_slot = (core, addr)
        else:
            before = len(ctrl.responses)
            adapter.handle(request(Op.SC, core=core, addr=addr, value=1))
            response = ctrl.responses[before]
            expected_ok = model_slot == (core, addr)
            assert (response.status is Status.OK) == expected_ok
            model_slot = None
