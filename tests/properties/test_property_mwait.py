"""Property tests for Mwait semantics (no lost wake-ups, no phantoms).

The dangerous bug class for monitor-style primitives is the *lost
wake-up*: a waiter that sleeps forever because the store landed in the
check-then-sleep window.  Mwait closes it with the expected value;
these properties drive randomized timing through both wait-capable
variants and assert every waiter always wakes with a current value.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine, SystemConfig, VariantSpec
from repro.interconnect.messages import Status

SIM_SETTINGS = settings(max_examples=15, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])

wait_variants = st.sampled_from([VariantSpec.lrscwait_ideal(),
                                 VariantSpec.lrscwait(2),
                                 VariantSpec.colibri(num_addresses=2)])


@SIM_SETTINGS
@given(variant=wait_variants,
       waiters=st.integers(1, 7),
       store_delay=st.integers(0, 120),
       waiter_jitter=st.integers(0, 120),
       seed=st.integers(0, 300))
def test_no_lost_wakeups(variant, waiters, store_delay, waiter_jitter,
                         seed):
    """Whatever the relative timing of the store and the Mwaits, every
    waiter terminates having observed the new value."""
    machine = Machine(SystemConfig.scaled(8), variant, seed=seed)
    flag = machine.allocator.alloc_interleaved(1)
    observed = []

    def writer(api):
        yield from api.compute(store_delay)
        yield from api.sw(flag, 1)

    def waiter(api):
        yield from api.compute(1 + api.rng.randrange(waiter_jitter + 1))
        while True:
            resp = yield from api.mwait(flag, expected=0)
            if resp.status is Status.QUEUE_FULL:
                value = yield from api.lw(flag)
                if value != 0:
                    observed.append(value)
                    return
                yield from api.compute(4)
                continue
            if resp.value != 0:
                observed.append(resp.value)
                return

    machine.load(0, writer)
    machine.load_range(range(1, 1 + waiters), waiter)
    machine.run()  # would raise DeadlockError on any lost wake-up
    assert observed == [1] * waiters


@SIM_SETTINGS
@given(variant=wait_variants,
       values=st.lists(st.integers(1, 100), min_size=1, max_size=6,
                       unique=True),
       seed=st.integers(0, 300))
def test_mwait_never_reports_stale_value(variant, values, seed):
    """A woken Mwait must report a value different from its expected
    one (the whole point of carrying the expectation)."""
    machine = Machine(SystemConfig.scaled(8), variant, seed=seed)
    flag = machine.allocator.alloc_interleaved(1)
    reports = []

    def writer(api):
        for value in values:
            yield from api.compute(13)
            yield from api.sw(flag, value)

    def waiter(api):
        current = 0
        while current != values[-1]:
            resp = yield from api.mwait(flag, expected=current)
            if resp.status is Status.QUEUE_FULL:
                current = yield from api.lw(flag)
                continue
            assert resp.value != current
            current = resp.value
            reports.append(current)

    machine.load(0, writer)
    machine.load(1, waiter)
    machine.run()
    assert reports[-1] == values[-1]
