"""Property-based tests for the concurrent queue and the allocator."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine, SystemConfig, VariantSpec
from repro.algorithms.mcs_queue import ConcurrentQueue
from repro.arch.allocator import Allocator
from repro.arch.config import SystemConfig as Config

SIM_SETTINGS = settings(max_examples=10, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])


@SIM_SETTINGS
@given(method=st.sampled_from(["lrsc", "wait", "lock"]),
       num_cores=st.sampled_from([4, 8]),
       per_core=st.integers(2, 5),
       dequeues=st.integers(0, 2),
       seed=st.integers(0, 500))
def test_queue_conservation_under_random_shapes(method, num_cores,
                                                per_core, dequeues, seed):
    variant = {"lrsc": VariantSpec.lrsc(),
               "wait": VariantSpec.colibri(),
               "lock": VariantSpec.amo()}[method]
    dequeues = min(dequeues, per_core)
    machine = Machine(SystemConfig.scaled(num_cores), variant, seed=seed)
    queue = ConcurrentQueue(machine, method, nodes_per_core=per_core)
    consumed = []

    def kernel(api):
        for seq in range(per_core):
            yield from queue.enqueue(api, api.core_id * 1000 + seq)
            yield from api.compute(api.rng.randrange(8))
        for _ in range(dequeues):
            while True:
                ok, value = yield from queue.dequeue(api)
                if ok:
                    consumed.append(value)
                    break
                yield from api.compute(4)

    machine.load_all(kernel)
    machine.run()
    produced = {core * 1000 + seq
                for core in range(num_cores) for seq in range(per_core)}
    remaining = queue.drain_values()
    assert len(set(consumed)) == len(consumed)
    assert set(consumed) | set(remaining) == produced
    assert len(consumed) + len(remaining) == len(produced)


@given(sizes=st.lists(st.integers(1, 30), min_size=1, max_size=20))
def test_interleaved_allocations_never_overlap(sizes):
    alloc = Allocator(Config.scaled(16))
    claimed = set()
    for size in sizes:
        base = alloc.alloc_interleaved(size)
        words = {base + 4 * i for i in range(size)}
        assert not words & claimed
        claimed |= words


@given(requests=st.lists(
    st.tuples(st.integers(0, 63), st.integers(1, 4)),
    min_size=1, max_size=30))
def test_pinned_allocations_never_overlap(requests):
    alloc = Allocator(Config.scaled(16))
    claimed = set()
    stride = alloc.config.num_banks * 4
    for bank, size in requests:
        bank = bank % alloc.config.num_banks
        try:
            base = alloc.alloc_in_bank(bank, size)
        except Exception:
            continue  # bank exhausted is fine; overlap is not
        words = {base + stride * i for i in range(size)}
        assert not words & claimed
        claimed |= words
