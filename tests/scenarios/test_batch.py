"""Batched execution: goldens, reset hygiene, cache, CLI plumbing."""

import dataclasses
import random

import pytest

from repro.algorithms.histogram import Histogram
from repro.algorithms.matmul import Matmul
from repro.cli import main
from repro.engine.batch import BatchRunner
from repro.engine.errors import ConfigError, SimulationError
from repro.eval.runner import ResultCache
from repro.scenarios import default_spec, run_scenario, run_scenarios
from repro.scenarios.batch import execute_batch, machine_key
from repro.scenarios.registry import get_workload, list_workloads
from repro.scenarios.run import (
    apply_settings,
    build_machine,
    scenario_cache_key,
    sweep,
)
from repro.workloads.streams import zipf_stream


def smoke_spec(workload: str, **params):
    workload_cls = get_workload(workload)
    spec = apply_settings(default_spec(workload),
                          dict(workload_cls.smoke))
    if params:
        spec = spec.with_params(**params)
    spec.validate()
    return spec


# -- batch == sequential goldens -----------------------------------------------


def test_batch_equals_sequential_across_all_workloads():
    specs = [smoke_spec(name) for name, _cls in list_workloads()]
    sequential = run_scenarios(specs)
    batched = run_scenarios(specs, batch=True)
    assert batched == sequential


def test_batch_equals_sequential_across_methods_and_variants():
    specs = []
    for method, variant in [("amo", "lrsc"), ("lrsc", "lrsc"),
                            ("lrsc", "lrsc_table"),
                            ("wait", "lrscwait:2"), ("wait", "colibri"),
                            ("wait", "ticket")]:
        specs.append(dataclasses.replace(
            smoke_spec("histogram", method=method), variant=variant))
    assert run_scenarios(specs, batch=True) == run_scenarios(specs)


def test_batch_results_align_with_input_order():
    specs = [smoke_spec("histogram", bins=bins) for bins in (1, 2, 4)]
    results = execute_batch(specs)
    assert [r.spec for r in results] == specs


def test_batch_handles_composite_workloads():
    spec = smoke_spec("interference")
    assert run_scenarios([spec], batch=True) == run_scenarios([spec])


# -- machine reuse and reset hygiene -------------------------------------------


def test_batch_actually_shares_machines():
    # 3 points, one shape/variant/seed: one build, two resets.
    specs = [smoke_spec("histogram", bins=bins) for bins in (1, 2, 4)]
    assert len({machine_key(spec) for spec in specs}) == 1
    runner = BatchRunner()
    for spec in specs:
        runner.acquire(machine_key(spec),
                       lambda s=spec: build_machine(s))
    assert runner.builds == 1
    assert runner.resets == 2
    assert runner.pooled == 1


def test_reset_leaves_no_state_behind_a_b_a():
    # A-B-A through one warm machine: the third result must equal the
    # first bit-for-bit, or the reset leaked state from B.
    spec_a = smoke_spec("histogram", bins=2)
    spec_b = smoke_spec("histogram", bins=8, updates_per_core=4)
    first, _middle, third = execute_batch([spec_a, spec_b, spec_a])
    assert third == first


def test_batch_stats_are_detached_copies():
    spec = smoke_spec("histogram")
    results = execute_batch([spec, spec])
    assert results[0].stats == results[1].stats
    assert results[0].stats is not results[1].stats


def test_machine_reset_restores_fresh_behavior():
    spec = smoke_spec("histogram", method="wait")
    reference = run_scenario(spec)
    machine = build_machine(spec)
    from repro.scenarios.run import execute
    execute(get_workload(spec.workload), spec, machine=machine)
    machine.reset()
    warm = execute(get_workload(spec.workload), spec, machine=machine)
    assert warm.cycles == reference.cycles
    assert warm.stats == reference.stats


def test_machine_reset_refuses_probes():
    spec = smoke_spec("histogram")
    machine = build_machine(spec)
    machine.attach_probes(["bank_contention"])
    with pytest.raises(SimulationError, match="probes"):
        machine.reset()


def test_batch_runner_rebuilds_non_resettable_machines():
    class Unresettable:
        resettable = False

        def __init__(self):
            self.reset_called = False

        def reset(self):
            self.reset_called = True

    runner = BatchRunner()
    first = runner.acquire("key", Unresettable)
    second = runner.acquire("key", Unresettable)
    assert second is not first
    assert not first.reset_called
    assert runner.builds == 2
    assert runner.resets == 0


# -- vectorized drivers == scalar kernels --------------------------------------


@pytest.mark.parametrize("method,variant",
                         [("amo", "colibri"), ("lrsc", "lrsc"),
                          ("wait", "lrscwait:2"), ("wait", "colibri")])
def test_flat_histogram_driver_matches_scalar(method, variant):
    spec = dataclasses.replace(smoke_spec("histogram", method=method),
                               variant=variant)
    flat = run_scenario(spec)            # workload path = flat driver
    machine = build_machine(spec)
    params = get_workload("histogram").resolve_params(spec)
    histogram = Histogram(machine, params["bins"])
    machine.load_all(histogram.kernel_factory(
        method, params["updates_per_core"]))
    scalar_stats = machine.run()
    assert scalar_stats == flat.stats


@pytest.mark.parametrize("method", ["amo", "lrsc", "wait"])
def test_flat_zipf_driver_matches_scalar(method):
    variant = "lrsc" if method == "lrsc" else "colibri"
    spec = dataclasses.replace(smoke_spec("histogram_zipf", method=method),
                               variant=variant)
    flat = run_scenario(spec)
    machine = build_machine(spec)
    params = get_workload("histogram_zipf").resolve_params(spec)
    histogram = Histogram(machine, params["bins"])
    streams = [
        list(zipf_stream(random.Random(spec.seed * 1_000_003 + core),
                         params["bins"], params["updates_per_core"],
                         exponent=params["exponent"]))
        for core in range(machine.config.num_cores)
    ]
    from repro.sync.rmw import fetch_add

    def kernel(api):
        for index in streams[api.core_id]:
            yield from fetch_add(api, histogram.bin_addr(index), 1,
                                 method)
            yield from api.retire()

    machine.load_all(kernel)
    assert machine.run() == flat.stats


def test_flat_matmul_driver_matches_scalar():
    spec = smoke_spec("matmul")
    flat = run_scenario(spec)
    machine = build_machine(spec)
    params = get_workload("matmul").resolve_params(spec)
    workers = machine.config.num_cores
    matmul = Matmul(machine, params["dim"])
    matmul.fill_inputs()
    for worker, rows in enumerate(matmul.partition_rows(workers)):
        machine.load(worker,
                     lambda api, r=rows: matmul.worker_kernel(api, r))
    scalar_stats = machine.run_until_finished(list(range(workers)))
    matmul.verify()
    assert scalar_stats == flat.stats


def test_flat_factories_reject_lock_method():
    spec = smoke_spec("histogram")
    machine = build_machine(spec)
    histogram = Histogram(machine, 2)
    with pytest.raises(ValueError, match="lock"):
        histogram.flat_kernel_factory("lock", 2)
    with pytest.raises(ValueError, match="lock"):
        histogram.flat_stream_factory([[0]], "lock")


# -- cache interaction ---------------------------------------------------------


def test_batch_populates_and_hits_result_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    specs = [smoke_spec("histogram", bins=bins) for bins in (2, 4)]
    first = run_scenarios(specs, cache=cache, batch=True)
    for spec in specs:
        assert cache.lookup_hash(scenario_cache_key(spec), None) \
            is not None
    assert cache.stores == len(specs)
    hits_before = cache.hits
    second = run_scenarios(specs, cache=cache, batch=True)
    assert cache.hits == hits_before + len(specs)
    # Cache entries drop the bulky stats tree (as on the sequential
    # path); everything else round-trips bit-identically.
    assert second == [dataclasses.replace(result, stats=None)
                      for result in first]


def test_batch_rejects_parallel_jobs():
    with pytest.raises(ConfigError, match="incompatible with jobs"):
        run_scenarios([smoke_spec("histogram")], jobs=2, batch=True)


# -- sweep / CLI plumbing ------------------------------------------------------


def test_sweep_batch_equals_sequential():
    base = smoke_spec("histogram")
    axes = {"bins": [2, 4], "method": ["amo", "wait"]}
    assert sweep(base, axes, batch=True) == sweep(base, axes)


def run_cli(capsys, argv, expect_code=0):
    code = main(argv)
    captured = capsys.readouterr()
    assert code == expect_code, captured.out + captured.err
    return captured.out + captured.err


def test_cli_sweep_batch_matches_non_batch(capsys):
    argv = ["sweep", "histogram", "--axis", "bins=2,4",
            "--set", "updates_per_core=2", "--cores", "8"]
    plain = run_cli(capsys, argv)
    batched = run_cli(capsys, argv + ["--batch"])
    assert batched == plain


def test_cli_sweep_batch_with_jobs_exits_2(capsys):
    out = run_cli(capsys, ["sweep", "histogram", "--axis", "bins=2,4",
                           "--batch", "--jobs", "2"], expect_code=2)
    assert "incompatible" in out


def test_cli_explore_batch_journal_identical(capsys, tmp_path):
    argv = ["explore", "histogram", "--smoke",
            "--axis", "bins=2,4", "--axis", "method=amo,wait",
            "--objective", "min:cycles", "--budget", "8"]
    from repro.dse import load_journal
    run_cli(capsys, argv + ["--out", str(tmp_path / "plain")])
    run_cli(capsys, argv + ["--batch", "--out", str(tmp_path / "batch")])
    plain = load_journal(str(tmp_path / "plain" / "journal.json"))
    batch = load_journal(str(tmp_path / "batch" / "journal.json"))
    # wall_ms is real measured time, the one field allowed to differ.
    for journal in (plain, batch):
        for record in journal["evaluations"]:
            assert record.pop("wall_ms") > 0
    assert batch == plain


def test_cli_explore_batch_with_jobs_exits_2(capsys):
    out = run_cli(capsys, ["explore", "histogram", "--smoke",
                           "--axis", "bins=2,4", "--budget", "4",
                           "--batch", "--jobs", "2"], expect_code=2)
    assert "incompatible" in out
