"""Workload registry: registration, lookup, parameter validation."""

import pytest

from repro.engine.errors import ConfigError
from repro.scenarios import (
    LoadedWorkload,
    ScenarioSpec,
    UnknownWorkloadError,
    Workload,
    default_spec,
    get_workload,
    list_workloads,
    register_workload,
    run_scenario,
    unregister_workload,
)

#: The registry contract the CLI and CI smoke rely on.
PAPER_WORKLOADS = {"histogram", "queue", "interference", "matmul"}
NEW_WORKLOADS = {"histogram_zipf", "pipeline", "barrier_storm"}


def test_builtins_registered():
    names = {name for name, _workload in list_workloads()}
    assert PAPER_WORKLOADS <= names
    assert NEW_WORKLOADS <= names
    assert len(names) >= 7


def test_builtins_have_descriptions_and_smoke_params():
    for name, workload in list_workloads():
        assert workload.description, name
        assert isinstance(workload.params, dict), name
        # every workload must come up from its defaults + smoke overrides
        assert isinstance(workload.smoke, dict), name


def test_unknown_workload_error_lists_known():
    with pytest.raises(UnknownWorkloadError, match="histogram"):
        get_workload("warp_drive")


def test_unknown_workload_is_config_error():
    with pytest.raises(ConfigError):
        ScenarioSpec(workload="warp_drive").validate()


def test_unknown_param_rejected_with_accepted_list():
    spec = default_spec("histogram").with_params(bogus_knob=3)
    with pytest.raises(ConfigError, match="bogus_knob"):
        spec.validate()
    with pytest.raises(ConfigError, match="updates_per_core"):
        spec.validate()


def test_unknown_param_rejected_at_run_time():
    spec = default_spec("queue").with_params(nope=1)
    with pytest.raises(ConfigError, match="nope"):
        run_scenario(spec)


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigError, match="already registered"):
        @register_workload("histogram")
        class Shadow(Workload):
            pass


def test_user_registration_and_replace():
    @register_workload("test_noop")
    class NoopWorkload(Workload):
        description = "does nothing"
        params = {"spins": 1}

        def load(self, machine, spec):
            p = self.resolve_params(spec)

            def kernel(api):
                for _ in range(p["spins"]):
                    yield from api.compute(1)
                    yield from api.retire()

            machine.load_all(kernel)
            return LoadedWorkload()

    try:
        result = run_scenario(default_spec("test_noop",
                                           num_cores=4, variant="amo"))
        assert result.cycles > 0

        # replace=True shadows deliberately; without it, it raises.
        @register_workload("test_noop", replace=True)
        class NoopWorkload2(NoopWorkload):
            description = "still nothing"

        assert get_workload("test_noop").description == "still nothing"
    finally:
        unregister_workload("test_noop")
    with pytest.raises(UnknownWorkloadError):
        get_workload("test_noop")
