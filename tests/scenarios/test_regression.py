"""Figure/table outputs must be bit-identical through the scenario API.

The golden numbers below were captured on the pre-scenario codebase
(PR 1) by running the then hand-wired experiment functions directly.
The same entry points now build :class:`ScenarioSpec`\\ s and execute
through the registry; any drift in these values means the refactor
changed the simulated experiments, not just their plumbing.

One cached point per figure plus the full Table II, all at CI scale.
"""

from repro.arch.config import SystemConfig
from repro.eval.fig3 import point_spec as fig3_point_spec
from repro.eval.fig4 import point_spec as fig4_point_spec
from repro.eval.fig6 import run_queue_point
from repro.eval.table2 import run_table2
from repro.memory.variants import VariantSpec
from repro.scenarios import run_scenario
from repro.workloads.interference import run_interference


def test_fig3_point_bit_identical():
    spec = fig3_point_spec("LRSCwait_ideal", 4, num_cores=8,
                           updates_per_core=4, seed=0)
    point = run_scenario(spec).point
    assert point.label == "LRSCwait_ideal"
    assert point.cycles == 80
    assert point.throughput == 0.4
    assert point.messages == 128
    assert point.sc_failures == 0
    assert point.wait_rejections == 0
    assert point.sleep_cycles == 279
    assert point.active_cycles == 96
    assert point.pj_per_op == 28.3828125


def test_fig4_point_bit_identical():
    spec = fig4_point_spec("LRSC lock", 2, num_cores=8,
                           updates_per_core=3, seed=0)
    point = run_scenario(spec).point
    assert point.label == "LRSC lock"
    assert point.cycles == 553
    assert point.throughput == 0.0433996383363472
    assert point.messages == 356
    assert point.pj_per_op == 169.61249999999998


def test_fig5_point_bit_identical():
    result = run_interference(SystemConfig.scaled(16), VariantSpec.lrsc(),
                              "lrsc", 4, 1, matmul_dim=6, seed=0)
    assert result.baseline_cycles == 1606
    assert result.interfered_cycles == 1616
    assert result.relative_throughput == 0.9938118811881188


def test_fig6_point_bit_identical():
    point = run_queue_point("Colibri", 8, 4, 8, seed=0)
    assert point.label == "Colibri"
    assert point.cycles == 209
    assert point.throughput == 0.15311004784688995
    assert point.min_core_rate == 0.03827751196172249
    assert point.max_core_rate == 0.046242774566473986
    assert point.jain_fairness == 0.9946939634406936


def test_table2_bit_identical():
    table = run_table2(num_cores=8, updates_per_core=3)
    assert table.rows == [
        ("Atomic Add", 6.921290322580647, 14.9, -63.99335447817551),
        ("Colibri", 3.4050857142857147, 41.38125, 0.0),
        ("LRSC", 4.012133072407045, 142.375, 244.05678900468206),
        ("Atomic Add lock", 3.817384615384616, 172.3125,
         316.40235613955593),
    ]
