"""Executing specs: equivalence, parallelism, caching, run modes."""

import dataclasses

import pytest

from repro.engine.errors import ConfigError
from repro.eval.harness import FIG3_SERIES, histogram_spec, run_histogram_point
from repro.eval.runner import ResultCache
from repro.scenarios import (
    build_machine,
    default_spec,
    run_scenario,
    run_scenarios,
)
from repro.scenarios.run import sweep


def paper_point_spec():
    """One genuine Fig. 3 point (LRSCwait_ideal, 8 cores, 4 bins)."""
    return histogram_spec(FIG3_SERIES[1], 8, 4, 4, seed=0)


def new_scenario_spec():
    """One of the non-paper scenarios, tiny."""
    return default_spec("barrier_storm").with_params(rounds=2)


# -- spec-driven == direct -----------------------------------------------------


def test_run_scenario_matches_run_histogram_point():
    point = run_scenario(paper_point_spec()).point
    direct = run_histogram_point(FIG3_SERIES[1], 8, 4, 4, seed=0)
    assert point == direct


def test_result_carries_stats_and_metrics():
    result = run_scenario(paper_point_spec())
    assert result.cycles == result.stats.cycles
    assert result.throughput == result.stats.throughput
    assert "pj_per_op" in result.metrics
    assert result.scalars()["cycles"] == result.cycles


def test_requested_metrics_attached():
    spec = dataclasses.replace(paper_point_spec(),
                               metrics=("hops", "ops"))
    result = run_scenario(spec)
    assert result.metrics["ops"] == 8 * 4
    assert result.metrics["hops"] > 0


# -- parallel == serial --------------------------------------------------------


def test_parallel_equals_serial_for_paper_and_new_scenarios():
    specs = [paper_point_spec(), new_scenario_spec(),
             paper_point_spec().override(seed=1),
             new_scenario_spec().override(seed=3)]
    serial = run_scenarios(specs, jobs=1)
    parallel = run_scenarios(specs, jobs=4)
    for a, b in zip(serial, parallel):
        assert a.cycles == b.cycles
        assert a.metrics == b.metrics
        assert a.point == b.point


def test_run_scenario_jobs_parameter_accepted():
    a = run_scenario(paper_point_spec(), jobs=1)
    b = run_scenario(paper_point_spec(), jobs=2)
    assert a.point == b.point


# -- caching -------------------------------------------------------------------


def test_cache_hits_by_stable_hash(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = paper_point_spec()
    first = run_scenario(spec, cache=cache)
    assert cache.stores == 1
    second = run_scenario(spec, cache=cache)
    assert cache.hits == 1
    assert second.point == first.point


def test_cache_persists_across_instances(tmp_path):
    spec = new_scenario_spec()
    run_scenario(spec, cache=ResultCache(str(tmp_path)))
    warm = ResultCache(str(tmp_path))
    result = run_scenario(spec, cache=warm)
    assert warm.hits == 1 and warm.stores == 0
    assert result.metrics["rounds"] == 2


def test_cache_distinguishes_specs(tmp_path):
    cache = ResultCache(str(tmp_path))
    run_scenario(paper_point_spec(), cache=cache)
    run_scenario(paper_point_spec().with_params(bins=2), cache=cache)
    assert cache.stores == 2


# -- run modes -----------------------------------------------------------------


def test_horizon_mode_freezes_at_budget():
    spec = default_spec("histogram", num_cores=8).with_params(
        bins=2, updates_per_core=50).override(mode="horizon", horizon=40)
    result = run_scenario(spec)
    assert result.cycles == 40


def test_watched_mode_on_matmul():
    spec = default_spec("matmul", num_cores=8).with_params(
        dim=4, workers=2).override(mode="watched")
    result = run_scenario(spec)
    assert result.cycles > 0


def test_watched_mode_rejected_without_watched_cores():
    spec = default_spec("histogram", num_cores=8).override(mode="watched")
    with pytest.raises(ConfigError, match="watched"):
        run_scenario(spec)


# -- build_machine -------------------------------------------------------------


def test_build_machine_matches_spec():
    spec = default_spec("pipeline")          # 6 cores, 2-core tiles
    machine = build_machine(spec)
    assert machine.config.num_cores == 6
    assert machine.config.cores_per_tile == 2
    assert machine.variant == spec.variant_spec()
    assert machine.seed == spec.seed


# -- sweep ---------------------------------------------------------------------


def test_sweep_cartesian_grid():
    base = default_spec("histogram", num_cores=8).with_params(
        updates_per_core=2)
    outcomes = sweep(base, {"bins": [1, 4], "seed": [0, 1]})
    assert len(outcomes) == 4
    combos = [combo for combo, _result in outcomes]
    assert {"bins": 4, "seed": 1} in combos
    for combo, result in outcomes:
        assert result.spec.params_dict()["bins"] == combo["bins"]
        assert result.spec.seed == combo["seed"]
        assert result.cycles > 0


def test_sweep_needs_axes():
    with pytest.raises(ConfigError):
        sweep(default_spec("histogram"), {})


# -- apply_settings ------------------------------------------------------------


def test_apply_settings_honors_explicit_none():
    from repro.scenarios import apply_settings
    base = default_spec("barrier_storm")     # cores_per_tile=3 default
    assert base.cores_per_tile == 3
    reset = apply_settings(base, {"cores_per_tile": None,
                                  "cores": 8})
    assert reset.cores_per_tile is None      # back to the scaled default
    assert reset.num_cores == 8


def test_cache_entries_drop_stats_but_keep_points(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = paper_point_spec()
    fresh = run_scenario(spec, cache=cache)
    assert fresh.stats is not None           # fresh result keeps stats
    hit = run_scenario(spec, cache=cache)
    assert hit.stats is None                 # cache stores scalars only
    assert hit.point == fresh.point
    assert hit.metrics == fresh.metrics
    assert hit.cycles == fresh.cycles


def test_probed_runs_bypass_and_never_pollute_the_cache(tmp_path):
    """Telemetry reports stay out of ResultCache entries: a probed run
    simulates fresh (even on a warm cache) and the entry it would have
    matched keeps serving slim, telemetry-free results."""
    cache = ResultCache(str(tmp_path))
    spec = paper_point_spec()
    run_scenario(spec, cache=cache)                    # warm the cache
    probed = run_scenario(spec, probes=["bank_contention"])
    assert probed.telemetry is not None
    assert probed.telemetry.probes["bank_contention"]["banks"]
    hit = run_scenario(spec, cache=cache)              # still a slim hit
    assert hit.telemetry is None
    assert hit.stats is None
    assert hit.cycles == probed.cycles
