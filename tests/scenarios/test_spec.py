"""ScenarioSpec serialization, hashing and variant parsing."""

import os
import subprocess
import sys

import pytest

import repro
from repro.engine.errors import ConfigError
from repro.memory.variants import VariantSpec
from repro.scenarios import (
    ScenarioSpec,
    parse_variant,
    shape_from_config,
    variant_string,
)
from repro.arch.config import SystemConfig


def sample_spec() -> ScenarioSpec:
    return ScenarioSpec(
        workload="histogram",
        num_cores=16,
        variant="lrscwait:half",
        params={"bins": 4, "updates_per_core": 3, "label": None},
        seed=7,
        metrics=("sc_failures", "messages"))


# -- round trips ---------------------------------------------------------------


def test_to_dict_from_dict_identity():
    spec = sample_spec()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_round_trip_preserves_hash():
    spec = sample_spec()
    rebuilt = ScenarioSpec.from_dict(spec.to_dict())
    assert rebuilt.stable_hash() == spec.stable_hash()


def test_round_trip_with_shape_and_latency():
    spec = ScenarioSpec(workload="pipeline", num_cores=6,
                        cores_per_tile=2, banks_per_tile=8,
                        latency={"remote_group": 9},
                        mode="horizon", horizon=500)
    rebuilt = ScenarioSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.system_config() == spec.system_config()


def test_params_freeze_makes_spec_hashable():
    spec = sample_spec()
    assert hash(spec) == hash(ScenarioSpec.from_dict(spec.to_dict()))
    assert spec.params_dict()["bins"] == 4


def test_list_params_become_tuples_and_round_trip():
    spec = ScenarioSpec(workload="histogram",
                        params={"bins": 4, "label": None,
                                "updates_per_core": 2})
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again.params == spec.params


# -- stable hash ---------------------------------------------------------------


def test_stable_hash_is_param_order_independent():
    a = ScenarioSpec(workload="histogram", params={"bins": 4, "method": "amo"})
    b = ScenarioSpec(workload="histogram", params={"method": "amo", "bins": 4})
    assert a.stable_hash() == b.stable_hash()


def test_stable_hash_changes_with_content():
    base = sample_spec()
    assert base.stable_hash() != base.with_params(bins=5).stable_hash()
    assert base.stable_hash() != base.override(seed=8).stable_hash()


def test_stable_hash_is_stable_across_processes():
    """The cache key must not depend on per-process hash randomization."""
    spec = sample_spec()
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "12345"  # force a different hash seed
    code = (
        "from repro.scenarios import ScenarioSpec;"
        f"print(ScenarioSpec.from_dict({spec.to_dict()!r}).stable_hash())"
    )
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == spec.stable_hash()


# -- structural validation -----------------------------------------------------


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown spec fields"):
        ScenarioSpec.from_dict({"workload": "histogram", "bogus": 1})


def test_from_dict_requires_workload():
    with pytest.raises(ConfigError, match="workload"):
        ScenarioSpec.from_dict({"num_cores": 8})


def test_bad_mode_rejected():
    with pytest.raises(ConfigError, match="mode"):
        ScenarioSpec(workload="histogram", mode="forever")


def test_horizon_mode_needs_horizon():
    with pytest.raises(ConfigError, match="horizon"):
        ScenarioSpec(workload="histogram", mode="horizon")


def test_non_serializable_param_rejected():
    with pytest.raises(ConfigError, match="JSON-able"):
        ScenarioSpec(workload="histogram", params={"bins": object()})


def test_validate_rejects_unknown_metric():
    spec = ScenarioSpec(workload="histogram", metrics=("warp_drive",))
    with pytest.raises(ConfigError, match="warp_drive"):
        spec.validate()


# -- variant grammar -----------------------------------------------------------


@pytest.mark.parametrize("text,expected", [
    ("amo", VariantSpec.amo()),
    ("lrsc", VariantSpec.lrsc()),
    ("lrsc-table", VariantSpec.lrsc_table()),
    ("lrsc_bank", VariantSpec.lrsc_bank()),
    ("colibri", VariantSpec.colibri()),
    ("colibri:8", VariantSpec.colibri(num_addresses=8)),
    ("lrscwait:1", VariantSpec.lrscwait(1)),
    ("lrscwait:ideal", VariantSpec.lrscwait_ideal()),
    ("ideal", VariantSpec.lrscwait_ideal()),
])
def test_parse_variant(text, expected):
    assert parse_variant(text, num_cores=16) == expected


def test_parse_variant_half_depends_on_cores():
    assert parse_variant("lrscwait:half", 16) == VariantSpec.lrscwait(8)
    assert parse_variant("lrscwait:half", 2) == VariantSpec.lrscwait(1)


@pytest.mark.parametrize("text", ["", "warp", "amo:4", "lrscwait",
                                  "lrscwait:x", "colibri:x"])
def test_parse_variant_rejects_garbage(text):
    with pytest.raises(ConfigError):
        parse_variant(text, 16)


@pytest.mark.parametrize("variant", [
    VariantSpec.amo(), VariantSpec.lrsc(), VariantSpec.lrsc_table(),
    VariantSpec.colibri(), VariantSpec.colibri(num_addresses=2),
    VariantSpec.lrscwait(3), VariantSpec.lrscwait_ideal(),
])
def test_variant_string_round_trips(variant):
    assert parse_variant(variant_string(variant), 16) == variant


# -- shape helpers -------------------------------------------------------------


def test_shape_from_config_reproduces_config():
    config = SystemConfig.scaled(16).with_latency(remote_group=7)
    spec = ScenarioSpec(workload="histogram",
                        **shape_from_config(config))
    assert spec.system_config() == config


def test_system_config_matches_scaled_default():
    spec = ScenarioSpec(workload="histogram", num_cores=32)
    assert spec.system_config() == SystemConfig.scaled(32)


def test_describe_mentions_workload_and_params():
    text = sample_spec().describe()
    assert "histogram" in text and "bins=4" in text
