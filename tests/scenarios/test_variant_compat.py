"""The variant-registry redesign's compatibility contract.

The golden hashes and run numbers below were captured on the
pre-registry codebase (PR 4) for every variant-string spelling that
existed then.  The registry redesign must keep each string parsing to
an equivalent spec with an **unchanged** ``stable_hash`` (result caches
and DSE journals are keyed by it — a drift silently orphans them) and
a **bit-identical** simulated run.
"""

import pytest

from repro.scenarios import (
    apply_settings,
    default_spec,
    merge_variant_params,
    run_scenario,
    sweep,
)
from repro.scenarios.spec import parse_variant, variant_string

#: variant string -> (stable_hash of the reference spec,
#:                    cycles, messages, active, sleep) captured pre-PR5.
GOLDEN = {
    "amo": ("94380496d351d7141c7ca93b0f4cca2a325dedf7fc33533526d29189217d90fc",
            26, 48, 24, 0),
    "lrsc": ("dbc24f21331b13856174adc1c3a2bce034a03f266bb1efa8ab4be600"
             "99136509", 527, 264, 1222, 0),
    "lrsc_table": ("25e0c9896df8f8509fec596bab122af24111b1689bbc00b9168"
                   "29ea29b1fc4a3", 212, 180, 306, 0),
    "lrsc_bank": ("85a94541144246031c4dedd7531eb8e0987db07112cdf484f16c"
                  "ae24f1bbbef2", 212, 180, 306, 0),
    "colibri": ("ec7058e5f2671ce67fcf3d524ee579e2160e8c2d57877538f33a62"
                "74fcf7dd3e", 95, 140, 72, 471),
    "colibri:8": ("7b7b4012064ac1a7b63b73482bb700eaf7d0f3a58889d52ed75d"
                  "387d12b29850", 95, 140, 72, 471),
    "lrscwait:1": ("409b3e0ab26e6159ba9d4687c03ba1a57449a45ec2296b40070"
                   "4350a2161ac73", 147, 140, 428, 195),
    "lrscwait:half": ("1dad85ca707cabaddce7ab69dce103b1b616523a45d60cf1"
                      "e378dee6d5232cf4", 100, 98, 105, 298),
    "lrscwait:ideal": ("f37b3c396f8c2c8cb3b1842377f856bfdb4a1236e1f2ee7"
                       "4340ec2c50745304a", 79, 96, 72, 361),
    "ideal": ("24491a0de236507b858c575f6449f65e5521596d69ce4da209313"
              "44ef6d72ea5", 79, 96, 72, 361),
    "lrsc-table": ("1036935d38c024356220c2689b7e05f7918ececad007a3f8b4b"
                   "f601798c9e6fa", 212, 180, 306, 0),
}


def _reference_spec(text):
    variant = parse_variant(text, 8)
    return default_spec("histogram", num_cores=8, variant=text).with_params(
        bins=2, updates_per_core=3, method=variant.native_method)


@pytest.mark.parametrize("text", sorted(GOLDEN))
def test_stable_hash_unchanged(text):
    """Caches/journals keyed by the hash survive the refactor."""
    assert _reference_spec(text).stable_hash() == GOLDEN[text][0]


@pytest.mark.parametrize("text", sorted(GOLDEN))
def test_run_bit_identical(text):
    _hash, cycles, messages, active, sleep = GOLDEN[text]
    result = run_scenario(_reference_spec(text))
    assert (result.cycles, result.messages, result.active_cycles,
            result.sleep_cycles) == (cycles, messages, active, sleep)


def test_half_still_materializes_to_concrete_slots():
    """A 'half' variant stringifies to what actually ran (spec
    identity of the figure factories)."""
    assert variant_string(parse_variant("lrscwait:half", 8)) == "lrscwait:4"
    assert variant_string(parse_variant("lrscwait:half", 256)) \
        == "lrscwait:128"


# -- the generalized grammar ---------------------------------------------------


def test_keyed_form_parses_to_same_variant_spec():
    assert parse_variant("lrscwait:queue_slots=3", 8) \
        == parse_variant("lrscwait:3", 8)
    assert parse_variant("colibri:num_addresses=8", 8) \
        == parse_variant("colibri:8", 8)
    assert parse_variant("lrscwait:queue_slots=half", 8) \
        == parse_variant("lrscwait:4", 8)


def test_new_variant_strings_round_trip():
    for text in ("ticket", "ticket:2", "lrsc_backoff",
                 "lrsc_backoff:base=4,cap=16"):
        variant = parse_variant(text, 8)
        assert parse_variant(variant_string(variant), 8) == variant


def test_merge_variant_params():
    assert merge_variant_params("colibri", {"num_addresses": 8}) \
        == "colibri:8"
    assert merge_variant_params("lrscwait:8", {"queue_slots": "half"}) \
        == "lrscwait:half"
    assert merge_variant_params("lrscwait:8", {"queue_slots": None}) \
        == "lrscwait:ideal"
    assert merge_variant_params("lrsc_backoff:cap=16", {"base": 4}) \
        == "lrsc_backoff:base=4,cap=16"


def test_apply_settings_variant_param_keys():
    spec = default_spec("histogram", num_cores=8, variant="lrscwait:1")
    layered = apply_settings(spec, {"variant.queue_slots": 4})
    assert layered.variant == "lrscwait:4"
    # Combined with a same-call variant override, params win on top.
    layered = apply_settings(spec, {"variant": "ticket",
                                    "variant.addresses": 8})
    assert layered.variant == "ticket:8"


def test_sweep_over_variant_param_axis():
    base = default_spec("histogram", num_cores=8,
                        variant="lrscwait:1").with_params(
        bins=2, updates_per_core=2)
    outcomes = sweep(base, {"variant.queue_slots": [1, 4, "ideal"]})
    variants = [result.spec.variant for _combo, result in outcomes]
    assert variants == ["lrscwait:1", "lrscwait:4", "lrscwait:ideal"]
    # More slots can only help (fewer QUEUE_FULL retries).
    cycles = [result.cycles for _combo, result in outcomes]
    assert cycles[0] >= cycles[1] >= cycles[2]
