"""Behaviour of the built-in (and especially the new) workloads."""

import pytest

from repro.engine.errors import ConfigError
from repro.scenarios import apply_settings, default_spec, get_workload, \
    run_scenario


def smoke_spec(name):
    workload = get_workload(name)
    return apply_settings(default_spec(name), dict(workload.smoke))


@pytest.mark.parametrize("name", [
    "histogram", "histogram_zipf", "queue", "matmul", "interference",
    "pipeline", "barrier_storm",
])
def test_every_registered_scenario_smokes(name):
    """What the CI smoke job runs: every registry entry must build a
    machine and complete its tiny spec."""
    result = run_scenario(smoke_spec(name))
    assert result.cycles > 0


def test_zipf_histogram_concentrates_on_hot_bins():
    even = run_scenario(default_spec("histogram_zipf", num_cores=16)
                        .with_params(bins=32, exponent=0.0,
                                     updates_per_core=16))
    skewed = run_scenario(default_spec("histogram_zipf", num_cores=16)
                          .with_params(bins=32, exponent=2.5,
                                       updates_per_core=16))
    assert skewed.metrics["hot_bin_share"] > even.metrics["hot_bin_share"]


def test_zipf_histogram_rejects_lock_method():
    spec = default_spec("histogram_zipf").with_params(method="lock")
    with pytest.raises(ConfigError, match="lock"):
        run_scenario(spec)


def test_zipf_histogram_deterministic_per_seed():
    spec = default_spec("histogram_zipf", num_cores=8).with_params(
        bins=8, updates_per_core=4)
    a = run_scenario(spec)
    b = run_scenario(spec)
    assert a.cycles == b.cycles
    assert a.metrics == b.metrics


def test_pipeline_runs_on_odd_tile_shape():
    result = run_scenario(default_spec("pipeline"))
    assert result.spec.num_cores == 6
    assert result.spec.cores_per_tile == 2
    assert result.metrics["items_delivered"] == 8
    assert result.metrics["stages"] == 6


def test_pipeline_mwait_sleeps_polling_does_not():
    sleeping = run_scenario(default_spec("pipeline"))
    polling = run_scenario(default_spec("pipeline")
                           .with_params(use_mwait=False))
    assert sleeping.sleep_cycles > 0
    assert polling.sleep_cycles == 0


def test_pipeline_needs_two_stages():
    spec = default_spec("pipeline").override(num_cores=1,
                                             cores_per_tile=1)
    with pytest.raises(ConfigError, match="num_cores >= 2"):
        run_scenario(spec)


def test_barrier_storm_runs_on_odd_tile_shape():
    result = run_scenario(default_spec("barrier_storm"))
    assert result.spec.num_cores == 12
    assert result.spec.cores_per_tile == 3
    assert result.metrics["rounds"] == 5


def test_barrier_storm_polling_fallback_on_amo():
    result = run_scenario(default_spec("barrier_storm")
                          .override(variant="amo")
                          .with_params(rounds=2))
    assert result.cycles > 0
    assert result.sleep_cycles == 0  # amo hardware cannot sleep


def test_histogram_native_method_follows_variant():
    amo = run_scenario(default_spec("histogram", num_cores=8,
                                    variant="amo")
                       .with_params(bins=2, updates_per_core=2))
    assert amo.point.label == "AtomicAdd/amo"
    lrsc = run_scenario(default_spec("histogram", num_cores=8,
                                     variant="lrsc")
                        .with_params(bins=2, updates_per_core=2))
    assert lrsc.point.label == "LRSC/lrsc"


def test_queue_active_cores_bounded():
    for bad in (9, 0, -2):
        spec = default_spec("queue", num_cores=8).with_params(
            active_cores=bad)
        with pytest.raises(ConfigError, match="active_cores"):
            run_scenario(spec)


def test_matmul_workers_bounded():
    for bad in (0, -1, 99):
        spec = default_spec("matmul", num_cores=8).with_params(workers=bad)
        with pytest.raises(ConfigError, match="workers"):
            run_scenario(spec)


def test_interference_scenario_reports_ratio():
    result = run_scenario(smoke_spec("interference"))
    assert 0 < result.metrics["relative_throughput"] <= 1.0
    assert result.point.num_pollers == 12
