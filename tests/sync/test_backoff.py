"""Unit tests for backoff policies."""

import random

from repro.sync.backoff import ExponentialBackoff, FixedBackoff, NoBackoff


def test_no_backoff_is_zero():
    policy = NoBackoff()
    rng = random.Random(0)
    assert all(policy.delay(rng, attempt) == 0 for attempt in range(10))


def test_fixed_backoff_within_window():
    policy = FixedBackoff(window=128)
    rng = random.Random(1)
    delays = [policy.delay(rng, attempt) for attempt in range(200)]
    assert all(1 <= d <= 128 for d in delays)
    assert len(set(delays)) > 10  # actually randomized


def test_exponential_backoff_grows_then_caps():
    policy = ExponentialBackoff(base=8, cap=256)
    rng = random.Random(2)
    early_max = max(policy.delay(rng, 0) for _ in range(100))
    late = [policy.delay(rng, 20) for _ in range(100)]
    assert early_max <= 16
    assert all(1 <= d <= 256 for d in late)
    assert max(late) > 128  # the cap region is actually reached


def test_exponential_backoff_huge_attempt_does_not_overflow():
    policy = ExponentialBackoff(base=8, cap=256)
    rng = random.Random(3)
    assert 1 <= policy.delay(rng, 10 ** 6) <= 256


def test_policies_are_deterministic_given_rng():
    policy = FixedBackoff(window=64)
    a = [policy.delay(random.Random(42), i) for i in range(5)]
    b = [policy.delay(random.Random(42), i) for i in range(5)]
    assert a == b
