"""Tests for the sense-reversing barrier."""

from repro import VariantSpec
from repro.sync.barrier import CentralBarrier

from ..conftest import make_machine


def run_phases(machine, barrier, phases=3):
    """Each core logs (phase, core) after each barrier; the barrier is
    correct iff no core starts phase p+1 before all finished phase p."""
    log = []

    def kernel(api):
        for phase in range(phases):
            yield from api.compute(1 + api.rng.randrange(30))
            yield from barrier.wait(api)
            log.append((phase, api.core_id, machine.sim.now))

    machine.load_all(kernel)
    machine.run()
    return log


def assert_phases_ordered(log, num_cores, phases):
    by_phase = {}
    for phase, core, cycle in log:
        by_phase.setdefault(phase, []).append(cycle)
    for phase in range(phases - 1):
        assert len(by_phase[phase]) == num_cores
        # Everyone leaves phase p before anyone leaves phase p+1...
        assert max(by_phase[phase]) <= min(by_phase[phase + 1])


def test_barrier_with_mwait_on_colibri():
    machine = make_machine(8, VariantSpec.colibri(), seed=1)
    barrier = CentralBarrier.create(machine, use_mwait=True)
    log = run_phases(machine, barrier)
    assert_phases_ordered(log, 8, 3)


def test_barrier_with_polling_on_amo():
    machine = make_machine(8, VariantSpec.amo(), seed=2)
    barrier = CentralBarrier.create(machine, use_mwait=False)
    log = run_phases(machine, barrier)
    assert_phases_ordered(log, 8, 3)


def test_barrier_subset_of_cores():
    machine = make_machine(8, VariantSpec.colibri(), seed=3)
    barrier = CentralBarrier.create(machine, parties=4, use_mwait=True)
    log = []

    def kernel(api):
        yield from barrier.wait(api)
        log.append(api.core_id)

    machine.load_range(range(4), kernel)
    machine.run()
    assert sorted(log) == [0, 1, 2, 3]


def test_mwait_barrier_sleeps_instead_of_polling():
    machine_mwait = make_machine(8, VariantSpec.colibri(), seed=4)
    barrier = CentralBarrier.create(machine_mwait, use_mwait=True)

    def kernel(api):
        # Core 0 arrives very late; everyone else waits.
        if api.core_id == 0:
            yield from api.compute(500)
        yield from barrier.wait(api)

    machine_mwait.load_all(kernel)
    stats = machine_mwait.run()
    assert stats.total_sleep_cycles > 7 * 300  # waiters slept, not spun
