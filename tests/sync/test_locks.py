"""Mutual-exclusion tests for every lock implementation.

The harness increments a plain (non-atomic) shared counter inside the
critical section; with correct mutual exclusion the final value equals
the number of acquisitions whatever the interleaving.  A deliberately
broken "no-op lock" control confirms the harness actually catches
races.
"""

import pytest

from repro import VariantSpec
from repro.sync.backoff import FixedBackoff
from repro.sync.locks import (
    AmoSpinLock,
    ColibriSpinLock,
    LrscSpinLock,
    MwaitMcsLock,
    TicketLock,
)

from ..conftest import make_machine

CORES = 8
ROUNDS = 5


def exercise(machine, lock, cores=CORES, rounds=ROUNDS):
    counter = machine.allocator.alloc_interleaved(1)

    def kernel(api):
        for _ in range(rounds):
            yield from lock.acquire(api)
            value = yield from api.lw(counter)
            yield from api.compute(2)  # widen the race window
            yield from api.sw(counter, value + 1)
            yield from lock.release(api)
            yield from api.retire()

    machine.load_all(kernel)
    stats = machine.run()
    return machine.peek(counter), stats


def test_amo_spin_lock_mutual_exclusion():
    machine = make_machine(CORES, VariantSpec.amo(), seed=1)
    lock = AmoSpinLock.create(machine, backoff=FixedBackoff(32))
    final, _ = exercise(machine, lock)
    assert final == CORES * ROUNDS


def test_lrsc_spin_lock_mutual_exclusion():
    machine = make_machine(CORES, VariantSpec.lrsc(), seed=2)
    lock = LrscSpinLock.create(machine, backoff=FixedBackoff(32))
    final, _ = exercise(machine, lock)
    assert final == CORES * ROUNDS


def test_colibri_spin_lock_mutual_exclusion():
    machine = make_machine(CORES, VariantSpec.colibri(), seed=3)
    lock = ColibriSpinLock.create(machine, backoff=FixedBackoff(32))
    final, _ = exercise(machine, lock)
    assert final == CORES * ROUNDS


def test_mwait_mcs_lock_mutual_exclusion():
    machine = make_machine(CORES, VariantSpec.colibri(), seed=4)
    lock = MwaitMcsLock.create(machine)
    final, stats = exercise(machine, lock)
    assert final == CORES * ROUNDS
    # Waiters sleep on Mwait instead of polling.
    assert stats.total_sleep_cycles > 0


def test_mcs_lock_on_centralized_lrscwait():
    machine = make_machine(CORES, VariantSpec.lrscwait_ideal(), seed=5)
    lock = MwaitMcsLock.create(machine)
    final, _ = exercise(machine, lock)
    assert final == CORES * ROUNDS


def test_mcs_lock_queue_full_fallback():
    """On 1-slot hardware the Mwait monitor can bounce; the lock must
    fall back to polling and stay correct.  All MCS nodes are placed in
    one bank so concurrent waiters genuinely exhaust its single slot."""
    machine = make_machine(CORES, VariantSpec.lrscwait(1), seed=6)
    stride = machine.config.num_banks * machine.config.word_bytes
    nodes = [machine.allocator.alloc_in_bank(0, 2)
             for _ in range(machine.config.num_cores)]
    tail = machine.allocator.alloc_in_bank(1, 1)
    lock = MwaitMcsLock(tail, nodes, stride)
    final, stats = exercise(machine, lock)
    assert final == CORES * ROUNDS
    assert sum(c.wait_rejections for c in stats.cores) > 0


def test_ticket_lock_mutual_exclusion_and_fifo():
    machine = make_machine(CORES, VariantSpec.amo(), seed=7)
    lock = TicketLock.create(machine)
    final, _ = exercise(machine, lock)
    assert final == CORES * ROUNDS


def test_broken_lock_control_detects_races():
    """A no-op lock must lose updates under this harness — otherwise
    the mutual-exclusion tests above prove nothing."""

    class NoOpLock:
        def acquire(self, api):
            yield from api.compute(0)

        def release(self, api):
            yield from api.compute(0)

    machine = make_machine(CORES, VariantSpec.amo(), seed=8)
    final, _ = exercise(machine, NoOpLock())
    assert final < CORES * ROUNDS


def test_mcs_lock_is_fifo_fair():
    """MCS hands the lock over in arrival order; with staggered
    arrivals the acquisition order must match."""
    machine = make_machine(8, VariantSpec.colibri(), seed=9)
    lock = MwaitMcsLock.create(machine)
    order = []

    def kernel(api):
        yield from api.compute(1 + api.core_id * 40)  # staggered arrival
        yield from lock.acquire(api)
        order.append(api.core_id)
        yield from api.compute(120)  # hold long enough to queue everyone
        yield from lock.release(api)

    machine.load_all(kernel)
    machine.run()
    assert order == sorted(order)


def test_node_at_address_zero_rejected():
    with pytest.raises(ValueError):
        MwaitMcsLock(tail_addr=64, node_addrs=[0, 128], flag_stride=4)
