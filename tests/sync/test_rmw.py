"""Tests for the generic RMW helpers on live machines."""

import pytest

from repro import VariantSpec
from repro.sync.rmw import fetch_add, lrsc_fetch_modify, wait_fetch_modify

from ..conftest import make_machine


def run_counter(variant, kernel_builder, num_cores=8, updates=6):
    machine = make_machine(num_cores, variant, seed=11)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(kernel_builder(counter, updates))
    stats = machine.run()
    return machine.peek(counter), stats, num_cores * updates


def test_lrsc_fetch_modify_is_atomic():
    def build(counter, updates):
        def kernel(api):
            for _ in range(updates):
                yield from lrsc_fetch_modify(api, counter, lambda v: v + 1)
                yield from api.retire()
        return kernel

    final, stats, expected = run_counter(VariantSpec.lrsc(), build)
    assert final == expected


def test_wait_fetch_modify_is_atomic_on_colibri():
    def build(counter, updates):
        def kernel(api):
            for _ in range(updates):
                yield from wait_fetch_modify(api, counter, lambda v: v + 1)
                yield from api.retire()
        return kernel

    final, stats, expected = run_counter(VariantSpec.colibri(), build)
    assert final == expected
    # Polling-free: no SC failures without interfering plain stores.
    assert stats.total_sc_failures == 0


def test_wait_fetch_modify_is_atomic_on_bounded_queue():
    def build(counter, updates):
        def kernel(api):
            for _ in range(updates):
                yield from wait_fetch_modify(api, counter, lambda v: v + 1)
                yield from api.retire()
        return kernel

    final, stats, expected = run_counter(VariantSpec.lrscwait(2), build)
    assert final == expected
    # The 2-slot queue must have bounced someone at 8-way contention.
    rejections = sum(c.wait_rejections for c in stats.cores)
    assert rejections > 0


def test_fetch_add_dispatch():
    for method, variant in (("amo", VariantSpec.amo()),
                            ("lrsc", VariantSpec.lrsc()),
                            ("wait", VariantSpec.colibri())):
        def build(counter, updates, method=method):
            def kernel(api):
                for _ in range(updates):
                    old = yield from fetch_add(api, counter, 1, method)
                    assert isinstance(old, int)
                    yield from api.retire()
            return kernel

        final, _stats, expected = run_counter(variant, build,
                                              num_cores=4, updates=4)
        assert final == expected


def test_fetch_add_unknown_method():
    machine = make_machine(4, VariantSpec.amo())
    counter = machine.allocator.alloc_interleaved(1)

    def kernel(api):
        yield from fetch_add(api, counter, 1, "bogus")

    machine.load(0, kernel)
    with pytest.raises(Exception, match="bogus"):
        machine.run()


def test_rmw_returns_old_value_sequence():
    """Fetch-and-add old values over all cores form a permutation of
    0..N-1 — the linearizability witness for a shared counter."""
    machine = make_machine(8, VariantSpec.colibri(), seed=2)
    counter = machine.allocator.alloc_interleaved(1)
    observed = []

    def kernel(api):
        for _ in range(5):
            old = yield from wait_fetch_modify(api, counter,
                                               lambda v: v + 1)
            observed.append(old)

    machine.load_all(kernel)
    machine.run()
    assert sorted(observed) == list(range(8 * 5))
