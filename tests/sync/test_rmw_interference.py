"""The interfering-store path of the wait-based RMW (§III step 3).

LRSCwait guarantees no *contention-induced* SC failures, but a plain
store racing the head's critical window still invalidates the
reservation and fails the SCwait.  These tests exercise that retry
path end-to-end and confirm the atomicity invariant survives it.
"""

from repro import VariantSpec
from repro.interconnect.messages import Status
from repro.sync.rmw import wait_fetch_modify

from ..conftest import make_machine


def test_interfering_store_forces_scwait_retry():
    machine = make_machine(4, VariantSpec.colibri(), seed=1)
    counter = machine.allocator.alloc_interleaved(1)
    outcome = {}

    def rmw_core(api):
        # Hold the head long enough for the interferer to hit.
        while True:
            resp = yield from api.lrwait(counter)
            assert resp.status is Status.OK
            yield from api.compute(40)
            ok = yield from api.scwait(counter, resp.value + 100)
            outcome.setdefault("first_try", ok)
            if ok:
                return

    def interferer(api):
        yield from api.compute(15)  # lands inside the head's window
        yield from api.sw(counter, 7)

    machine.load(0, rmw_core)
    machine.load(1, interferer)
    stats = machine.run()
    assert outcome["first_try"] is False        # the race was real
    assert stats.total_sc_failures == 1
    assert machine.peek(counter) == 107         # retry read the store


def test_wait_fetch_modify_survives_interference():
    machine = make_machine(8, VariantSpec.colibri(), seed=2)
    counter = machine.allocator.alloc_interleaved(1)
    done = []

    def rmw_core(api):
        for _ in range(4):
            yield from wait_fetch_modify(api, counter, lambda v: v + 1,
                                         compute_cycles=6)
        done.append(api.core_id)

    def storm(api):
        # Periodic plain stores of the current value (idempotent but
        # reservation-killing).
        for _ in range(10):
            value = yield from api.lw(counter)
            yield from api.sw(counter, value)
            yield from api.compute(11)

    machine.load_range(range(4), rmw_core)
    machine.load_range(range(4, 8), storm)
    stats = machine.run()
    assert sorted(done) == [0, 1, 2, 3]
    # Idempotent stores can reorder with increments harmlessly only if
    # atomicity held for the increments themselves: the count of
    # successful SCwaits must equal the increments requested.
    assert sum(c.sc_successes for c in stats.cores) == 16


def test_lost_update_detection_without_atomics():
    """Control: plain load/store increments under the same storm DO
    lose updates, proving the previous test has teeth."""
    machine = make_machine(8, VariantSpec.colibri(), seed=3)
    counter = machine.allocator.alloc_interleaved(1)

    def racy(api):
        for _ in range(8):
            value = yield from api.lw(counter)
            yield from api.compute(3)
            yield from api.sw(counter, value + 1)

    machine.load_range(range(8), racy)
    machine.run()
    assert machine.peek(counter) < 64
