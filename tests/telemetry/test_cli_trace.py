"""CLI tests for ``repro trace`` and the list discoverability fixes."""

import json
import os

from repro.cli import main
from repro.scenarios import list_workloads
from repro.telemetry import list_probes, validate_report


def run_cli(capsys, argv, expect_code=0):
    code = main(argv)
    captured = capsys.readouterr()
    assert code == expect_code, captured.out
    return captured.out


def test_trace_renders_and_prints_json(capsys):
    """The acceptance-criterion invocation: heatmap + timeline + JSON."""
    out = run_cli(capsys, ["trace", "histogram", "--smoke",
                           "--probe", "bank_contention",
                           "--probe", "core_timeline"])
    assert "bank accesses per" in out
    assert "core states over" in out
    data = json.loads(out[out.index("JSON report:") + len("JSON report:"):])
    validate_report(data)
    assert set(data["probes"]) == {"bank_contention", "core_timeline"}


def test_trace_default_attaches_every_probe(capsys):
    out = run_cli(capsys, ["trace", "histogram", "--smoke", "--seed", "1"])
    for name, _cls in list_probes():
        assert name in out


def test_trace_json_export_validates(capsys, tmp_path):
    out_dir = str(tmp_path / "report")
    out = run_cli(capsys, ["trace", "histogram", "--smoke",
                           "--out", out_dir])
    assert "exported:" in out
    path = os.path.join(out_dir, "telemetry.json")
    with open(path) as stream:
        validate_report(json.load(stream))


def test_trace_csv_export_one_file_per_probe(capsys, tmp_path):
    out_dir = str(tmp_path / "csv")
    run_cli(capsys, ["trace", "queue", "--smoke", "--format", "csv",
                     "--out", out_dir,
                     "--probe", "bank_contention",
                     "--probe", "message_latency"])
    assert sorted(os.listdir(out_dir)) == ["bank_contention.csv",
                                           "message_latency.csv"]


def test_trace_vcd_export_contains_core_signals(capsys, tmp_path):
    out_dir = str(tmp_path / "vcd")
    run_cli(capsys, ["trace", "histogram", "--smoke",
                     "--probe", "core_timeline",
                     "--format", "vcd", "--out", out_dir])
    with open(os.path.join(out_dir, "trace.vcd")) as stream:
        text = stream.read()
    assert "$scope module cores $end" in text
    assert "sactive" in text
    assert "ssleeping" in text


def test_trace_vcd_without_timeline_probe_fails_cleanly(capsys, tmp_path):
    out = run_cli(capsys, ["trace", "histogram", "--smoke",
                           "--probe", "bank_contention",
                           "--format", "vcd",
                           "--out", str(tmp_path / "x")],
                  expect_code=2)
    assert "core_timeline" in out


def test_trace_bad_probe_option_exits_2(capsys):
    out = run_cli(capsys, ["trace", "histogram", "--smoke",
                           "--probe", "bank_contention",
                           "--window", "0"],
                  expect_code=2)
    assert "rejected options" in out


def test_trace_csv_without_out_exits_2(capsys):
    out = run_cli(capsys, ["trace", "histogram", "--smoke",
                           "--format", "csv"], expect_code=2)
    assert "--out" in out


def test_trace_unknown_probe_exits_2(capsys):
    out = run_cli(capsys, ["trace", "histogram", "--probe", "warp_probe"],
                  expect_code=2)
    assert "no probe registered" in out


def test_trace_unknown_scenario_exits_2(capsys):
    out = run_cli(capsys, ["trace", "warp_drive"], expect_code=2)
    assert "no workload registered" in out


def test_trace_composite_scenario_exits_2(capsys):
    out = run_cli(capsys, ["trace", "interference", "--smoke"],
                  expect_code=2)
    assert "does not support" in out


def test_trace_window_reaches_bank_contention(capsys):
    out = run_cli(capsys, ["trace", "histogram", "--smoke",
                           "--probe", "bank_contention",
                           "--window", "32"])
    assert "per 32-cycle window" in out


# -- repro list discoverability ----------------------------------------------


def test_list_shows_tunable_params(capsys):
    out = run_cli(capsys, ["list"])
    assert "tunable params" in out
    assert "bins=" in out              # histogram parameter surfaced
    assert "updates_per_core=" in out


def test_list_long_details_every_workload(capsys):
    out = run_cli(capsys, ["list", "--long"])
    for name, workload in list_workloads():
        assert name in out
        for key in workload.params:
            assert key in out
    assert "--set key=value" in out


def test_list_probes_flag(capsys):
    out = run_cli(capsys, ["list", "--probes"])
    for name, cls in list_probes():
        assert name in out
    assert "repro trace" in out
