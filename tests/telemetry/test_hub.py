"""Tests for the telemetry hook hub."""

import pytest

from repro.telemetry import HOOKS, Telemetry


def test_hooks_start_disabled():
    hub = Telemetry()
    assert not hub.active
    for hook in HOOKS:
        assert getattr(hub, "on_" + hook) is None


def test_single_subscriber_is_installed_directly():
    """One subscriber means zero dispatch indirection on the hot path."""
    hub = Telemetry()
    calls = []

    def receiver(*args):
        calls.append(args)

    hub.subscribe("bank_access", receiver)
    assert hub.on_bank_access is receiver
    assert hub.active
    hub.on_bank_access(1, 2, "msg", 0)
    assert calls == [(1, 2, "msg", 0)]


def test_fanout_preserves_subscription_order():
    hub = Telemetry()
    order = []
    hub.subscribe("core_state", lambda *a: order.append(("first", a)))
    hub.subscribe("core_state", lambda *a: order.append(("second", a)))
    hub.subscribe("core_state", lambda *a: order.append(("third", a)))
    hub.on_core_state(5, 0, "active")
    assert [name for name, _args in order] == ["first", "second", "third"]
    assert all(args == (5, 0, "active") for _name, args in order)
    assert [s for s in hub.subscribers("core_state")]  # exposed in order


def test_unknown_hook_rejected():
    with pytest.raises(ValueError, match="unknown telemetry hook"):
        Telemetry().subscribe("no_such_hook", lambda: None)


def test_hooks_are_independent():
    hub = Telemetry()
    hub.subscribe("message", lambda *a: None)
    assert hub.on_message is not None
    assert hub.on_bank_access is None
    assert hub.on_queue_depth is None
