"""Probe registry semantics and probe/stats reconciliation."""

import pytest

from repro import Machine, SystemConfig, VariantSpec
from repro.engine.errors import ConfigError
from repro.scenarios import default_spec, run_scenario
from repro.telemetry import (
    BankContention,
    CoreTimeline,
    Probe,
    UnknownProbeError,
    create_probe,
    get_probe,
    list_probes,
    register_probe,
    unregister_probe,
)

from ..conftest import increment_kernel_wait, make_machine

BUILTINS = ("bank_contention", "core_timeline", "queue_occupancy",
            "message_latency")


# -- registry -----------------------------------------------------------------


def test_builtin_probes_registered():
    names = [name for name, _cls in list_probes()]
    for name in BUILTINS:
        assert name in names


def test_unknown_probe_error_names_alternatives():
    with pytest.raises(UnknownProbeError, match="bank_contention"):
        get_probe("no_such_probe")


def test_unknown_probe_is_config_error():
    """Unknown probes exit 2 through the CLI, like scenario errors."""
    assert issubclass(UnknownProbeError, ConfigError)


def test_duplicate_registration_rejected_and_replace_allows():
    @register_probe("tmp_probe")
    class TmpProbe(Probe):
        def install(self, machine):
            pass

        def report(self):
            return {}

    try:
        with pytest.raises(ConfigError, match="already registered"):
            register_probe("tmp_probe")(TmpProbe)
        register_probe("tmp_probe", replace=True)(TmpProbe)
    finally:
        unregister_probe("tmp_probe")
    with pytest.raises(UnknownProbeError):
        get_probe("tmp_probe")


def test_create_probe_passes_and_rejects_options():
    probe = create_probe("bank_contention", window=64)
    assert probe.window == 64
    with pytest.raises(ConfigError, match="rejected options"):
        create_probe("core_timeline", window=64)


def test_probe_name_must_be_string():
    with pytest.raises(ConfigError):
        register_probe("")


# -- reconciliation with engine/stats counters --------------------------------


def probed_run(variant=None, probes=BUILTINS, cores=16, bins=1, updates=6,
               seed=3):
    spec = default_spec("histogram", num_cores=cores, seed=seed,
                        variant=variant or "colibri").with_params(
        bins=bins, updates_per_core=updates)
    return run_scenario(spec, probes=list(probes))


def test_bank_contention_reconciles_with_bank_stats():
    """Acceptance: per-bank telemetry totals equal the aggregate
    counters of engine/stats for the same seed."""
    result = probed_run()
    section = result.telemetry.probes["bank_contention"]
    assert len(section["banks"]) == len(result.stats.banks)
    for bank in section["banks"]:
        stats = result.stats.banks[bank["bank"]]
        assert bank["accesses"] == stats.accesses
        assert bank["conflicts"] == stats.conflicts
        # Windowed cells sum back to the totals.
        assert sum(cell[1] for cell in bank["windows"]) == bank["accesses"]
        assert sum(cell[2] for cell in bank["windows"]) == bank["conflicts"]


def test_bank_contention_counts_failed_responses_for_lrsc():
    """A polling LR/SC run on one bin produces SC failures, and the
    probe sees them at the bank that served them."""
    spec = default_spec("histogram", num_cores=16,
                        variant="lrsc").with_params(
        bins=1, updates_per_core=4, method="lrsc")
    result = run_scenario(spec, probes=["bank_contention"])
    failed = sum(b["failed_responses"]
                 for b in result.telemetry.probes["bank_contention"]["banks"])
    assert failed == result.stats.total_sc_failures > 0


def test_core_timeline_spans_partition_the_run():
    result = probed_run()
    section = result.telemetry.probes["core_timeline"]
    assert len(section["cores"]) == 16
    for core in section["cores"]:
        spans = core["spans"]
        assert spans[0][1] == 0
        for (_s1, _a1, end1), (_s2, start2, _e2) in zip(spans, spans[1:]):
            assert end1 == start2  # contiguous, no holes
        assert all(end > start for _state, start, end in spans)
    totals = section["state_totals"]
    assert totals.get("sleeping", 0) > 0  # colibri cores sleep
    assert totals.get("active", 0) > 0


def test_core_timeline_sleep_matches_stats_order_of_magnitude():
    """Span-measured sleeping covers at least the stats sleep cycles
    (spans also include the 1-cycle issue stage before the send)."""
    result = probed_run()
    section = result.telemetry.probes["core_timeline"]
    span_sleep = section["state_totals"]["sleeping"]
    stats_sleep = result.stats.total_sleep_cycles
    assert stats_sleep <= span_sleep <= stats_sleep + 2 * 16 * 6 * 2


def test_queue_occupancy_tracks_lrscwait_queue():
    result = probed_run(variant="lrscwait:ideal")
    section = result.telemetry.probes["queue_occupancy"]
    active = [bank for bank in section["banks"] if bank["samples"]]
    assert active, "contended run must produce queue samples"
    for bank in active:
        depths = [depth for _cycle, depth in bank["samples"]]
        assert bank["max_depth"] == max(depths)
        assert 0 < bank["max_depth"] <= 16
        assert 0 <= bank["mean_depth"] <= bank["max_depth"]
        cycles = [cycle for cycle, _depth in bank["samples"]]
        assert cycles == sorted(cycles)
    # All waiters served by the end of a completed run.
    assert all(bank["samples"][-1][1] == 0 for bank in active)


def test_queue_occupancy_tracks_colibri_waiters():
    result = probed_run(variant="colibri")
    section = result.telemetry.probes["queue_occupancy"]
    active = [bank for bank in section["banks"] if bank["samples"]]
    assert active
    assert max(bank["max_depth"] for bank in active) > 0
    assert all(bank["samples"][-1][1] == 0 for bank in active)


def test_message_latency_bucket_boundaries():
    """Exact powers of two land in their own (upper/2, upper] bucket."""
    probe = create_probe("message_latency")

    class Resp:
        class op:
            value = "lw"

    for waited in (0, 1, 2, 3, 4, 5, 8, 9):
        probe._on_response(0, 0, Resp, waited)
    histogram = dict(probe.report()["round_trip"]["lw"]["histogram"])
    assert histogram == {1: 2,    # waits 0 and 1
                         2: 1,    # wait 2
                         4: 2,    # waits 3 and 4
                         8: 2,    # waits 5 and 8
                         16: 1}   # wait 9


def test_message_latency_reconciles_with_request_counts():
    result = probed_run()
    section = result.telemetry.probes["message_latency"]
    # Every issued request produced exactly one observed response.
    responses = sum(entry["count"]
                    for entry in section["round_trip"].values())
    assert responses == result.stats.total_requests
    # Histogram buckets sum to the per-op counts.
    for entry in section["round_trip"].values():
        assert sum(n for _le, n in entry["histogram"]) == entry["count"]
        assert entry["max_cycles"] >= entry["mean_cycles"]
    # Network counts by kind match the aggregate message counters.
    by_kind = {kind: sum(classes.values())
               for kind, classes in section["messages"].items()}
    assert by_kind == result.stats.network.messages


# -- determinism and hook ordering --------------------------------------------


def test_probed_reports_are_deterministic():
    first = probed_run().telemetry.to_json()
    second = probed_run().telemetry.to_json()
    assert first == second


def test_probing_does_not_change_the_measurement():
    bare = probed_run(probes=())
    probed = probed_run()
    assert bare.cycles == probed.cycles
    assert bare.messages == probed.messages
    assert bare.metrics == probed.metrics


def test_hook_dispatch_order_follows_attach_order():
    """Two probes on the same hook observe events in attach order,
    deterministically across runs."""

    class Recorder(Probe):
        name = "recorder"

        def __init__(self, log, tag):
            self.log = log
            self.tag = tag

        def install(self, machine):
            machine.telemetry.subscribe(
                "bank_access",
                lambda cycle, bank, msg, queued: self.log.append(
                    (self.tag, cycle, bank)))

        def report(self):
            return {}

    def run_once():
        log = []
        machine = make_machine(8, VariantSpec.colibri(), seed=1)
        counter = machine.allocator.alloc_interleaved(1)
        machine.attach_probes([Recorder(log, "a"), Recorder(log, "b")])
        machine.load_all(increment_kernel_wait(counter, 2))
        machine.run()
        return log

    log = run_once()
    assert log, "contended run must hit bank ports"
    # Events alternate a,b for every observation, in attach order.
    for first, second in zip(log[0::2], log[1::2]):
        assert first[0] == "a" and second[0] == "b"
        assert first[1:] == second[1:]
    assert log == run_once()


# -- direct machine attachment ------------------------------------------------


def test_attach_probes_on_machine_and_collect():
    machine = Machine(SystemConfig.scaled(8), VariantSpec.colibri(), seed=2)
    counter = machine.allocator.alloc_interleaved(1)
    machine.load_all(increment_kernel_wait(counter, 3))
    probes = machine.attach_probes(["bank_contention", CoreTimeline()])
    assert isinstance(probes[0], BankContention)
    machine.run()
    report = machine.telemetry_report()
    assert set(report.probes) == {"bank_contention", "core_timeline"}
    assert report.workload is None
    assert report.cycles == machine.stats.cycles


def test_probes_survive_horizon_runs():
    spec = default_spec("histogram", num_cores=8, mode="horizon",
                        horizon=200).with_params(bins=1, updates_per_core=50)
    result = run_scenario(spec, probes=["core_timeline"])
    section = result.telemetry.probes["core_timeline"]
    ends = [core["spans"][-1][2] for core in section["cores"]]
    assert max(ends) <= 200 + 1


def test_composite_workload_rejects_probes():
    spec = default_spec("interference").with_params(workers=2, matmul_dim=4)
    with pytest.raises(ConfigError, match="does not support telemetry"):
        run_scenario(spec, probes=["bank_contention"])
