"""TelemetryReport serialization round-trips, CSV export, and schema."""

import csv
import json

import pytest

from repro.scenarios import default_spec, run_scenario
from repro.telemetry import (
    SchemaError,
    TelemetryReport,
    validate_report,
)

BUILTINS = ["bank_contention", "core_timeline", "queue_occupancy",
            "message_latency"]


@pytest.fixture(scope="module")
def report():
    spec = default_spec("histogram", num_cores=16, seed=7).with_params(
        bins=2, updates_per_core=4)
    return run_scenario(spec, probes=BUILTINS).telemetry


def test_json_round_trip(report):
    rebuilt = TelemetryReport.from_json(report.to_json())
    assert rebuilt == report
    assert rebuilt.to_json() == report.to_json()


def test_dict_round_trip_rejects_unknown_fields(report):
    data = report.to_dict()
    assert TelemetryReport.from_dict(data) == report
    data["bogus"] = 1
    with pytest.raises(Exception, match="unknown report fields"):
        TelemetryReport.from_dict(data)


def test_report_carries_run_identity(report):
    assert report.workload == "histogram"
    assert report.num_cores == 16
    assert report.seed == 7
    assert report.spec["params"]["bins"] == 2
    assert report.cycles > 0


def test_save_json_validates_on_disk(report, tmp_path):
    path = report.save_json(str(tmp_path / "telemetry.json"))
    with open(path) as stream:
        data = json.load(stream)
    validate_report(data)
    assert set(data["probes"]) == set(BUILTINS)


def test_csv_export_round_trips_totals(report, tmp_path):
    paths = report.to_csv(str(tmp_path))
    assert set(paths) == set(BUILTINS)

    # bank_contention rows sum back to the probe's totals.
    with open(paths["bank_contention"]) as stream:
        rows = list(csv.DictReader(stream))
    by_bank: dict = {}
    for row in rows:
        by_bank.setdefault(int(row["bank"]), [0, 0])
        by_bank[int(row["bank"])][0] += int(row["accesses"])
        by_bank[int(row["bank"])][1] += int(row["conflicts"])
    for bank in report.probes["bank_contention"]["banks"]:
        if bank["accesses"]:
            assert by_bank[bank["bank"]] == [bank["accesses"],
                                             bank["conflicts"]]

    # core_timeline rows reproduce every span.
    with open(paths["core_timeline"]) as stream:
        span_rows = [(int(r["core"]), r["state"], int(r["start"]),
                      int(r["end"])) for r in csv.DictReader(stream)]
    expected = [(core["core"], state, start, end)
                for core in report.probes["core_timeline"]["cores"]
                for state, start, end in core["spans"]]
    assert span_rows == expected


def test_render_mentions_every_probe_view(report):
    text = report.render(width=40)
    assert "telemetry report" in text
    assert "bank accesses per" in text
    assert "core states over" in text
    assert "round-trip latency" in text
    assert "queue occupancy" in text


def test_schema_rejects_malformed_reports(report):
    good = json.loads(report.to_json())
    validate_report(good)

    with pytest.raises(SchemaError, match="missing key"):
        validate_report({"version": 1})

    bad = json.loads(report.to_json())
    bad["probes"]["core_timeline"]["cores"][0]["spans"].append(["x", 5, 2])
    with pytest.raises(SchemaError, match="ends before it starts"):
        validate_report(bad)

    bad = json.loads(report.to_json())
    bad["cycles"] = "many"
    with pytest.raises(SchemaError, match="cycles"):
        validate_report(bad)


def test_schema_ignores_unknown_probe_sections(report):
    data = json.loads(report.to_json())
    data["probes"]["custom_probe"] = {"anything": [1, 2, 3]}
    validate_report(data)  # user probes are structurally unconstrained
    data["probes"]["custom_probe"] = "not a dict"
    with pytest.raises(SchemaError, match="section must be a dict"):
        validate_report(data)
