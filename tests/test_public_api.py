"""The public API surface: everything README/docs promise exists."""

import repro


def test_version():
    assert repro.__version__ == "1.7.0"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_verbatim():
    """The README's quickstart block must work exactly as printed."""
    from repro import Machine, SystemConfig, VariantSpec

    machine = Machine(SystemConfig.scaled(16), VariantSpec.colibri())
    counter = machine.allocator.alloc_interleaved(1)

    def kernel(api):
        for _ in range(10):
            resp = yield from api.lrwait(counter)
            yield from api.compute(1)
            yield from api.scwait(counter, resp.value + 1)
            yield from api.retire()

    machine.load_all(kernel)
    stats = machine.run()
    assert machine.peek(counter) == 160
    assert stats.throughput > 0
    assert stats.total_sleep_cycles > 0


def test_subpackage_exports_resolve():
    import repro.algorithms
    import repro.arch
    import repro.cores
    import repro.dse
    import repro.engine
    import repro.eval
    import repro.interconnect
    import repro.memory
    import repro.power
    import repro.scenarios
    import repro.sync
    import repro.obs
    import repro.telemetry
    import repro.workloads

    for module in (repro.algorithms, repro.arch, repro.cores,
                   repro.dse, repro.engine, repro.eval, repro.interconnect,
                   repro.memory, repro.obs, repro.power, repro.scenarios,
                   repro.sync, repro.telemetry, repro.workloads):
        for name in module.__all__:
            assert hasattr(module, name), (module.__name__, name)


def test_public_items_documented():
    """Every public item named in __all__ carries a docstring."""
    import repro.memory
    import repro.sync

    for module in (repro, repro.memory, repro.sync):
        for name in module.__all__:
            item = getattr(module, name)
            if callable(item) or isinstance(item, type):
                assert item.__doc__, f"{module.__name__}.{name} undocumented"
