"""Tests for the Fig. 5 interference workload."""

import pytest

from repro.arch.config import SystemConfig
from repro.memory.variants import VariantSpec
from repro.workloads.interference import InterferenceResult, run_interference


def test_baseline_equals_interfered_without_pollers():
    result = InterferenceResult(
        num_pollers=0, num_workers=4, num_bins=1, method="wait",
        baseline_cycles=100, interfered_cycles=100)
    assert result.relative_throughput == 1.0


def test_relative_throughput_below_one_when_slowed():
    result = InterferenceResult(
        num_pollers=12, num_workers=4, num_bins=1, method="lrsc",
        baseline_cycles=100, interfered_cycles=400)
    assert result.relative_throughput == 0.25


def test_more_workers_than_cores_rejected():
    config = SystemConfig.scaled(8)
    with pytest.raises(ValueError):
        run_interference(config, VariantSpec.amo(), "amo",
                         num_workers=9, num_bins=1)


def test_colibri_pollers_barely_interfere():
    config = SystemConfig.scaled(16)
    result = run_interference(config, VariantSpec.colibri(), "wait",
                              num_workers=4, num_bins=1, matmul_dim=8)
    assert result.num_pollers == 12
    assert result.relative_throughput > 0.9


def test_lrsc_pollers_interfere_at_least_as_much_as_colibri():
    config = SystemConfig.scaled(16)
    colibri = run_interference(config, VariantSpec.colibri(), "wait",
                               num_workers=4, num_bins=1, matmul_dim=8)
    lrsc = run_interference(config, VariantSpec.lrsc(), "lrsc",
                            num_workers=4, num_bins=1, matmul_dim=8)
    assert lrsc.relative_throughput <= colibri.relative_throughput + 0.02


def test_workers_are_remote_from_hot_tile():
    """Workers take the top core ids so the bins' tile is not theirs."""
    config = SystemConfig.scaled(16)
    result = run_interference(config, VariantSpec.amo(), "amo",
                              num_workers=2, num_bins=1, matmul_dim=6)
    assert result.num_workers == 2
    assert result.baseline_cycles > 0
