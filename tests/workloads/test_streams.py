"""Tests for workload index streams."""

import random
from collections import Counter

from repro.workloads.streams import (
    sequential_stream,
    uniform_stream,
    zipf_stream,
)


def test_uniform_stream_range_and_count():
    rng = random.Random(1)
    values = list(uniform_stream(rng, 8, 1000))
    assert len(values) == 1000
    assert set(values) <= set(range(8))
    counts = Counter(values)
    assert max(counts.values()) < 3 * min(counts.values())


def test_zipf_stream_is_skewed():
    rng = random.Random(2)
    values = list(zipf_stream(rng, 16, 4000, exponent=1.2))
    counts = Counter(values)
    assert counts[0] > counts.get(15, 0) * 3
    assert counts.most_common(1)[0][0] == 0


def test_zipf_exponent_zero_is_uniform():
    rng = random.Random(3)
    values = list(zipf_stream(rng, 8, 4000, exponent=0.0))
    counts = Counter(values)
    assert max(counts.values()) < 2 * min(counts.values())


def test_sequential_stream_round_robin():
    values = list(sequential_stream(3, 8, 10))
    assert values == [3, 4, 5, 6, 7, 0, 1, 2, 3, 4]


def test_streams_deterministic():
    a = list(uniform_stream(random.Random(9), 8, 50))
    b = list(uniform_stream(random.Random(9), 8, 50))
    assert a == b


def _zipf_reference(rng, num_bins, count, exponent):
    """Linear-scan CDF sampling — the spec the bisect path must match."""
    weights = [1.0 / (rank ** exponent) for rank in range(1, num_bins + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cumulative.append(acc / total)
    for _ in range(count):
        point = rng.random()
        for index, edge in enumerate(cumulative):
            if edge >= point:
                yield index
                break
        else:
            yield num_bins - 1


def test_zipf_bisect_matches_linear_scan():
    for exponent in (0.0, 0.7, 1.0, 2.5):
        fast = list(zipf_stream(random.Random(11), 37, 2000,
                                exponent=exponent))
        slow = list(_zipf_reference(random.Random(11), 37, 2000,
                                    exponent=exponent))
        assert fast == slow


def test_zipf_single_bin():
    assert list(zipf_stream(random.Random(4), 1, 10)) == [0] * 10
